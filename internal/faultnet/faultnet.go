// Package faultnet is a deterministic, seedable network fault injector
// for the live runtime: a transport.Middleware that subjects every
// outbound message to per-link drop, duplication, delay, reordering and
// byte-corruption probabilities, plus directional partitions that heal on
// a schedule or by command, and one-shot targeted drops ("lose the next
// PRIVILEGE") for scripted recovery scenarios.
//
// One Injector is shared by every endpoint it wraps, so a single object
// controls the whole fault surface of an in-process cluster (and one per
// process controls a TCP node's outbound links). Faults are applied on
// the send side: each directional link is governed by its sender's
// injector. All randomness flows from Options.Seed, so a chaos run
// replays exactly given the same seed and message order.
//
// Corruption is modeled at the wire layer, through whichever codec the
// algorithm would carry on a real cluster: a binary-capable algorithm's
// message is framed by the binary codec and the frame body damaged, any
// other is sealed into a gob wire.Envelope with its payload damaged.
// Either way the failed re-decode surfaces through Options.OnFault as a
// *wire.DecodeError — the same typed error a real corrupted TCP frame
// produces — and the message is dropped. Garbage never reaches protocol
// state.
//
// Wire the injector into a node with Chain, innermost so counters above
// it see the protocol's attempted traffic (see transport.Middleware):
//
//	inj := faultnet.New(faultnet.Options{Seed: 7, Faults: f, Algo: algo})
//	tr := transport.Chain(base, transport.CountingMW(reg), inj.Middleware())
//	inj.RegisterMetrics(reg) // faultnet_* counters on /metrics
package faultnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/telemetry"
	"tokenarbiter/internal/transport"
	"tokenarbiter/internal/wire"
)

// Faults is one link direction's fault model. Probabilities are
// independent per message; the zero value injects nothing.
type Faults struct {
	// Drop is the probability a message is silently discarded.
	Drop float64 `json:"drop"`
	// Dup is the probability a message is delivered twice.
	Dup float64 `json:"dup"`
	// Corrupt is the probability a message's wire payload is damaged; a
	// corrupted message surfaces as *wire.DecodeError and is dropped.
	Corrupt float64 `json:"corrupt"`
	// Delay is a fixed extra one-way latency added to every message.
	Delay time.Duration `json:"delay"`
	// Jitter adds a uniform random extra latency in [0, Jitter).
	Jitter time.Duration `json:"jitter"`
	// Reorder is the probability a message is held back an extra
	// ReorderWindow, letting messages sent after it overtake.
	Reorder float64 `json:"reorder"`
	// ReorderWindow is the hold-back duration for reordered messages;
	// zero with Reorder > 0 defaults to DefaultReorderWindow.
	ReorderWindow time.Duration `json:"reorder_window"`
}

// DefaultReorderWindow is the reorder hold-back when Faults.ReorderWindow
// is unset.
const DefaultReorderWindow = 5 * time.Millisecond

// active reports whether this link model can affect a message at all.
func (f Faults) active() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Corrupt > 0 ||
		f.Delay > 0 || f.Jitter > 0 || f.Reorder > 0
}

// Validate rejects probabilities outside [0, 1] and negative durations.
func (f Faults) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", f.Drop}, {"dup", f.Dup}, {"corrupt", f.Corrupt}, {"reorder", f.Reorder}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultnet: %s=%v outside [0,1]", p.name, p.v)
		}
	}
	if f.Delay < 0 || f.Jitter < 0 || f.ReorderWindow < 0 {
		return fmt.Errorf("faultnet: negative duration (delay=%v jitter=%v window=%v)",
			f.Delay, f.Jitter, f.ReorderWindow)
	}
	return nil
}

// Options configures an Injector.
type Options struct {
	// Seed seeds all fault randomness; runs with the same seed and the
	// same message order replay identically.
	Seed uint64
	// Faults is the default fault model applied to every link; override
	// individual links with SetLinkFaults.
	Faults Faults
	// Algo is the registered wire algorithm name, used to seal messages
	// for byte-corruption. Empty degrades Corrupt to a plain drop (still
	// counted as a corruption).
	Algo string
	// OnFault, when non-nil, receives the *wire.DecodeError produced by
	// each injected corruption. Called from Send paths; must be safe for
	// concurrent use.
	OnFault func(error)
}

// link is one ordered (from, to) pair.
type link struct{ From, To int }

// Injector is the shared fault state for a set of wrapped endpoints. All
// methods are safe for concurrent use.
type Injector struct {
	algo    string
	onFault func(error)

	mu        sync.Mutex
	rng       *rand.Rand
	faults    Faults
	perLink   map[link]Faults
	blocked   map[link]bool
	oneShot   map[string]int // message kind → remaining forced drops
	healTimer *time.Timer

	drops          atomic.Uint64
	dups           atomic.Uint64
	corruptions    atomic.Uint64
	delayed        atomic.Uint64
	reordered      atomic.Uint64
	partitionDrops atomic.Uint64
	partitionsMade atomic.Uint64
	healsMade      atomic.Uint64
}

// New builds an injector. Invalid fault probabilities panic — they are
// programming errors at this level; ParseFaults validates user input.
func New(opts Options) *Injector {
	if err := opts.Faults.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		algo:    opts.Algo,
		onFault: opts.OnFault,
		rng:     rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x9e3779b97f4a7c15)),
		faults:  opts.Faults,
		perLink: make(map[link]Faults),
		blocked: make(map[link]bool),
		oneShot: make(map[string]int),
	}
}

// Middleware returns the transport middleware applying this injector's
// faults to the wrapped endpoint's outbound messages. Wrap every endpoint
// of an in-process cluster with the same injector; in a TCP cluster each
// process wraps its own endpoint and the injector governs that node's
// outbound links only.
func (inj *Injector) Middleware() transport.Middleware {
	return func(next transport.Transport) transport.Transport {
		return &endpoint{inj: inj, next: next}
	}
}

// SetFaults replaces the default (all-links) fault model at runtime.
func (inj *Injector) SetFaults(f Faults) error {
	if err := f.Validate(); err != nil {
		return err
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.faults = f
	return nil
}

// Faults returns the current default fault model.
func (inj *Injector) Faults() Faults {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.faults
}

// SetLinkFaults overrides the fault model of the directional link
// from→to; the default model no longer applies to it.
func (inj *Injector) SetLinkFaults(from, to int, f Faults) error {
	if err := f.Validate(); err != nil {
		return err
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.perLink[link{from, to}] = f
	return nil
}

// ClearLinkFaults removes a per-link override; the link reverts to the
// default model.
func (inj *Injector) ClearLinkFaults(from, to int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	delete(inj.perLink, link{from, to})
}

// BlockLink blocks the directional link from→to: messages on it are
// dropped (counted as partition drops) until Unblock or Heal.
func (inj *Injector) BlockLink(from, to int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.blocked[link{from, to}] = true
}

// UnblockLink restores the directional link from→to.
func (inj *Injector) UnblockLink(from, to int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	delete(inj.blocked, link{from, to})
}

// Partition blocks every link between the two groups, both directions,
// leaving intra-group traffic untouched. It composes with existing
// blocks; Heal clears them all.
func (inj *Injector) Partition(a, b []int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			inj.blocked[link{x, y}] = true
			inj.blocked[link{y, x}] = true
		}
	}
	inj.partitionsMade.Add(1)
}

// PartitionFor is Partition with a scheduled Heal after d. A second
// scheduled heal supersedes the first.
func (inj *Injector) PartitionFor(a, b []int, d time.Duration) {
	inj.Partition(a, b)
	inj.mu.Lock()
	if inj.healTimer != nil {
		inj.healTimer.Stop()
	}
	inj.healTimer = time.AfterFunc(d, inj.Heal)
	inj.mu.Unlock()
}

// Heal removes every blocked link (partitions and individual blocks).
func (inj *Injector) Heal() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if len(inj.blocked) == 0 {
		return
	}
	inj.blocked = make(map[link]bool)
	if inj.healTimer != nil {
		inj.healTimer.Stop()
		inj.healTimer = nil
	}
	inj.healsMade.Add(1)
}

// DropNextKind forces the next k messages whose Kind() equals kind to be
// dropped, on any link — the deterministic "lose the token now" control
// recovery tests use. Counts accumulate across calls.
func (inj *Injector) DropNextKind(kind string, k int) {
	if k <= 0 {
		return
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.oneShot[kind] += k
}

// Counters is a snapshot of the injector's fault tallies.
type Counters struct {
	Drops          uint64 `json:"drops"`
	Dups           uint64 `json:"dups"`
	Corruptions    uint64 `json:"corruptions"`
	Delayed        uint64 `json:"delayed"`
	Reordered      uint64 `json:"reordered"`
	PartitionDrops uint64 `json:"partition_drops"`
	Partitions     uint64 `json:"partitions"`
	Heals          uint64 `json:"heals"`
}

// Counters returns the current fault tallies.
func (inj *Injector) Counters() Counters {
	return Counters{
		Drops:          inj.drops.Load(),
		Dups:           inj.dups.Load(),
		Corruptions:    inj.corruptions.Load(),
		Delayed:        inj.delayed.Load(),
		Reordered:      inj.reordered.Load(),
		PartitionDrops: inj.partitionDrops.Load(),
		Partitions:     inj.partitionsMade.Load(),
		Heals:          inj.healsMade.Load(),
	}
}

// BlockedLinks returns the currently blocked directional links, sorted.
func (inj *Injector) BlockedLinks() [][2]int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([][2]int, 0, len(inj.blocked))
	for l := range inj.blocked {
		out = append(out, [2]int{l.From, l.To})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// RegisterMetrics publishes the injector's tallies into reg as
// faultnet_* counters, joining the protocol and transport metrics on the
// same /metrics endpoint so chaos runs are observable live.
func (inj *Injector) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("faultnet_injected_drops_total",
		"messages dropped by the fault injector (random and forced)", inj.drops.Load)
	reg.CounterFunc("faultnet_injected_dups_total",
		"messages duplicated by the fault injector", inj.dups.Load)
	reg.CounterFunc("faultnet_injected_corruptions_total",
		"messages byte-corrupted (surfaced as wire decode errors) and dropped", inj.corruptions.Load)
	reg.CounterFunc("faultnet_injected_delays_total",
		"messages given extra injected latency", inj.delayed.Load)
	reg.CounterFunc("faultnet_injected_reorders_total",
		"messages held back to force reordering", inj.reordered.Load)
	reg.CounterFunc("faultnet_partition_drops_total",
		"messages dropped on blocked (partitioned) links", inj.partitionDrops.Load)
	reg.CounterFunc("faultnet_partitions_total",
		"partitions established", inj.partitionsMade.Load)
	reg.CounterFunc("faultnet_heals_total",
		"partition heals (scheduled or commanded)", inj.healsMade.Load)
}

// decision is what the locked fault roll concluded for one message.
type decision struct {
	drop   bool
	copies int
	delays []time.Duration
}

// decide rolls this message's fate under the injector lock, keeping the
// rng deterministic under concurrent senders.
func (inj *Injector) decide(from, to int, kind string) decision {
	inj.mu.Lock()
	defer inj.mu.Unlock()

	if inj.blocked[link{from, to}] {
		inj.partitionDrops.Add(1)
		return decision{drop: true}
	}
	if k := inj.oneShot[kind]; k > 0 {
		if k == 1 {
			delete(inj.oneShot, kind)
		} else {
			inj.oneShot[kind] = k - 1
		}
		inj.drops.Add(1)
		return decision{drop: true}
	}
	f, ok := inj.perLink[link{from, to}]
	if !ok {
		f = inj.faults
	}
	if !f.active() {
		return decision{copies: 1}
	}
	if f.Drop > 0 && inj.rng.Float64() < f.Drop {
		inj.drops.Add(1)
		return decision{drop: true}
	}
	if f.Corrupt > 0 && inj.rng.Float64() < f.Corrupt {
		inj.corruptions.Add(1)
		// Corruption is a drop plus a surfaced decode error; the caller
		// runs the (unlocked) wire round-trip.
		return decision{drop: true, copies: -1}
	}
	d := decision{copies: 1}
	if f.Dup > 0 && inj.rng.Float64() < f.Dup {
		d.copies = 2
		inj.dups.Add(1)
	}
	d.delays = make([]time.Duration, d.copies)
	for i := range d.delays {
		delay := f.Delay
		if f.Jitter > 0 {
			delay += time.Duration(inj.rng.Int64N(int64(f.Jitter)))
		}
		if f.Reorder > 0 && inj.rng.Float64() < f.Reorder {
			w := f.ReorderWindow
			if w <= 0 {
				w = DefaultReorderWindow
			}
			delay += w
			inj.reordered.Add(1)
		}
		d.delays[i] = delay
		if delay > 0 {
			inj.delayed.Add(1)
		}
	}
	return d
}

// corrupt frames msg with the algorithm's wire codec, damages the
// frame, and reproduces the typed error a real corrupted frame yields at
// the receiver. The message itself is dropped either way.
func (inj *Injector) corrupt(from int, msg dme.Message) {
	if inj.onFault == nil {
		return // nothing to surface to
	}
	if inj.algo == "" || !wire.Registered(inj.algo) {
		inj.onFault(&wire.DecodeError{
			From: from, Algo: inj.algo, Kind: msg.Kind(),
			Err: fmt.Errorf("faultnet: injected corruption (no wire algorithm configured)"),
		})
		return
	}
	if wire.BinaryCapable(inj.algo) {
		inj.corruptBinary(from, msg)
		return
	}
	inj.corruptGob(from, msg)
}

// corruptBinary damages a binary-codec frame: truncate the body to half
// and flip its last byte, exactly the kind of damage a broken link
// inflicts. The length prefix is rewritten for the truncated body — a
// real receiver reads a whole frame before looking inside it, so the
// per-message failure mode is an in-body decode error, not a broken
// stream.
func (inj *Injector) corruptBinary(from int, msg dme.Message) {
	generic := func(err error) {
		inj.onFault(&wire.DecodeError{
			From: from, Algo: inj.algo, Kind: msg.Kind(),
			Err: fmt.Errorf("faultnet: injected corruption: %w", err),
		})
	}
	var buf bytes.Buffer
	if err := wire.BinaryCodec().NewEncoder(&buf, inj.algo).Encode(from, msg); err != nil {
		generic(err)
		return
	}
	body := buf.Bytes()[4:]
	body = body[:(len(body)+1)/2]
	body[len(body)-1] ^= 0xa5
	damaged := binary.LittleEndian.AppendUint32(make([]byte, 0, 4+len(body)), uint32(len(body)))
	damaged = append(damaged, body...)
	_, _, err := wire.BinaryCodec().NewDecoder(bytes.NewReader(damaged), inj.algo).Decode()
	var de *wire.DecodeError
	if errors.As(err, &de) {
		inj.onFault(err)
		return
	}
	// Vanishingly unlikely: the damaged frame still decoded (or failed
	// some other way). The message is dropped regardless; report the
	// corruption generically.
	generic(fmt.Errorf("frame survived damage"))
}

// corruptGob seals msg into a gob envelope and damages the payload — the
// fallback codec's failure mode.
func (inj *Injector) corruptGob(from int, msg dme.Message) {
	env, err := wire.Seal(inj.algo, from, msg)
	if err != nil {
		inj.onFault(&wire.DecodeError{From: from, Algo: inj.algo, Kind: msg.Kind(), Err: err})
		return
	}
	// Truncate and flip: a damaged gob stream that cannot decode.
	if n := len(env.Payload); n > 0 {
		env.Payload = env.Payload[:(n+1)/2]
		env.Payload[len(env.Payload)-1] ^= 0xa5
	}
	if _, err := env.Open(inj.algo); err != nil {
		inj.onFault(err)
		return
	}
	// Vanishingly unlikely: the damaged payload still decoded. The
	// message is dropped regardless; report the corruption generically.
	inj.onFault(&wire.DecodeError{
		From: from, Algo: inj.algo, Kind: msg.Kind(),
		Err: fmt.Errorf("faultnet: injected corruption"),
	})
}

// endpoint is the per-transport middleware layer.
type endpoint struct {
	inj  *Injector
	next transport.Transport
}

var _ transport.Transport = (*endpoint)(nil)
var _ transport.Wrapper = (*endpoint)(nil)

// Self implements transport.Transport.
func (e *endpoint) Self() dme.NodeID { return e.next.Self() }

// SetHandler implements transport.Transport; faults are send-side, so
// delivery passes straight through.
func (e *endpoint) SetHandler(h transport.Handler) { e.next.SetHandler(h) }

// Close implements transport.Transport.
func (e *endpoint) Close() error { return e.next.Close() }

// Unwrap implements transport.Wrapper.
func (e *endpoint) Unwrap() transport.Transport { return e.next }

// Send implements transport.Transport, applying the injector's fault
// model. Self-sends are not a network link and pass through untouched.
func (e *endpoint) Send(to dme.NodeID, msg dme.Message) error {
	from := e.next.Self()
	if to == from {
		return e.next.Send(to, msg)
	}
	d := e.inj.decide(from, to, msg.Kind())
	if d.drop {
		if d.copies == -1 {
			e.inj.corrupt(from, msg)
		}
		return nil
	}
	var err error
	for i := 0; i < d.copies; i++ {
		var delay time.Duration
		if i < len(d.delays) {
			delay = d.delays[i]
		}
		if delay > 0 {
			// Delayed copies are delivered best-effort: by the time the
			// timer fires the endpoint may be gone, which is just more
			// message loss as far as the protocol is concerned.
			time.AfterFunc(delay, func() { _ = e.next.Send(to, msg) })
			continue
		}
		if sendErr := e.next.Send(to, msg); sendErr != nil && err == nil {
			err = sendErr
		}
	}
	return err
}
