package reqtrace

import (
	"fmt"
	"testing"
)

func TestMakeIDRoundTrip(t *testing.T) {
	cases := []struct {
		node int
		seq  uint64
	}{
		{0, 1}, {0, 2}, {1, 1}, {7, 12345}, {999, 1 << 39},
	}
	for _, c := range cases {
		id := MakeID(c.node, c.seq)
		if id == 0 {
			t.Fatalf("MakeID(%d, %d) = 0, the untraced sentinel", c.node, c.seq)
		}
		if id.Node() != c.node || id.Seq() != c.seq {
			t.Errorf("MakeID(%d, %d) decoded to (%d, %d)", c.node, c.seq, id.Node(), id.Seq())
		}
	}
	if got, want := MakeID(3, 14).String(), "3-14"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := ID(0).String(); got != "-" {
		t.Errorf("zero ID String() = %q, want -", got)
	}
}

// span is a test shorthand for one lifecycle span.
func span(id ID, p Phase, at float64) Span {
	return Span{Trace: id, Phase: p, At: at, Node: id.Node(), Peer: -1, Key: "k"}
}

// complete records a full enqueue→grant→release life for id.
func complete(c *Collector, id ID, start, wait, hold float64) {
	c.Record(span(id, PhaseEnqueue, start))
	c.Record(span(id, PhaseGrant, start+wait))
	c.Record(span(id, PhaseRelease, start+wait+hold))
}

func TestCollectorLifecycle(t *testing.T) {
	c := NewCollector(8)
	id := MakeID(1, 1)
	c.Record(span(id, PhaseEnqueue, 0.0))
	c.Record(Span{Trace: id, Phase: PhaseBatch, At: 0.1, Node: 2, Peer: -1, Key: "k", Batch: 3})
	c.Record(Span{Trace: id, Phase: PhaseTokenHop, At: 0.2, Node: 2, Peer: 1, Key: "k"})
	c.Record(Span{Trace: id, Phase: PhaseGrant, At: 0.3, Node: 1, Peer: -1, Key: "k", Fence: 9})

	if done, open, _ := c.Totals(); done != 0 || open != 1 {
		t.Fatalf("before release: totals = (%d done, %d open)", done, open)
	}
	c.Record(span(id, PhaseRelease, 0.5))
	if done, open, _ := c.Totals(); done != 1 || open != 0 {
		t.Fatalf("after release: totals = (%d done, %d open)", done, open)
	}

	tr, ok := c.Lookup(id)
	if !ok {
		t.Fatal("completed trace not found by Lookup")
	}
	if tr.Key != "k" || len(tr.Spans) != 5 {
		t.Fatalf("trace key %q with %d spans, want k with 5", tr.Key, len(tr.Spans))
	}
	if w := tr.Wait(); w < 0.299 || w > 0.301 {
		t.Errorf("Wait() = %v, want 0.3", w)
	}
	if h := tr.Hold(); h < 0.199 || h > 0.201 {
		t.Errorf("Hold() = %v, want 0.2", h)
	}
	if tr.Hops() != 1 {
		t.Errorf("Hops() = %d, want 1", tr.Hops())
	}
	if tr.Fence() != 9 {
		t.Errorf("Fence() = %d, want 9", tr.Fence())
	}

	sum := tr.Summarize()
	if sum.ID != "1-1" || sum.Fence != 9 || sum.Hops != 1 {
		t.Errorf("summary header %+v", sum)
	}
	if len(sum.Steps) != 5 {
		t.Fatalf("summary has %d steps, want 5", len(sum.Steps))
	}
	if sum.Steps[0].Delta != 0 {
		t.Errorf("first step delta = %v, want 0", sum.Steps[0].Delta)
	}
	// Each later delta is the gap to the previous span.
	if d := sum.Steps[2].Delta; d < 0.099 || d > 0.101 {
		t.Errorf("token-hop delta = %v, want 0.1", d)
	}
}

func TestCollectorRingEviction(t *testing.T) {
	c := NewCollector(2)
	for i := 1; i <= 3; i++ {
		complete(c, MakeID(0, uint64(i)), float64(i), 0.1, 0.1)
	}
	done := c.Completed()
	if len(done) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(done))
	}
	// Oldest first, and the very first completion is gone.
	if done[0].ID != MakeID(0, 2) || done[1].ID != MakeID(0, 3) {
		t.Errorf("ring = [%s, %s], want [0-2, 0-3]", done[0].ID, done[1].ID)
	}
	if _, ok := c.Lookup(MakeID(0, 1)); ok {
		t.Error("evicted trace still found by Lookup")
	}
	if total, _, _ := c.Totals(); total != 3 {
		t.Errorf("total completed = %d, want 3", total)
	}
}

func TestCollectorOpenEviction(t *testing.T) {
	c := NewCollector(4)
	// Open one more trace than the in-flight bound without ever releasing.
	for i := 1; i <= defaultMaxOpen+1; i++ {
		c.Record(span(MakeID(0, uint64(i)), PhaseEnqueue, float64(i)))
	}
	_, open, dropped := c.Totals()
	if open != defaultMaxOpen {
		t.Errorf("open = %d, want the %d bound", open, defaultMaxOpen)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1 (the oldest open trace)", dropped)
	}
}

func TestSlowest(t *testing.T) {
	c := NewCollector(16)
	waits := []float64{0.3, 0.1, 0.5, 0.2}
	for i, w := range waits {
		complete(c, MakeID(i, 1), 0, w, 0.01)
	}
	slow := c.Slowest(2)
	if len(slow) != 2 {
		t.Fatalf("Slowest(2) returned %d traces", len(slow))
	}
	if slow[0].ID != MakeID(2, 1) || slow[1].ID != MakeID(0, 1) {
		t.Errorf("Slowest(2) = [%s, %s], want [2-1, 0-1]", slow[0].ID, slow[1].ID)
	}
	if all := c.Slowest(-1); len(all) != 4 {
		t.Errorf("Slowest(-1) returned %d traces, want all 4", len(all))
	}
}

func TestSlowestFor(t *testing.T) {
	c := NewCollector(16)
	for i := 0; i < 4; i++ {
		id := MakeID(i, 1)
		key := fmt.Sprintf("key-%d", i%2)
		c.Record(Span{Trace: id, Phase: PhaseEnqueue, At: 0, Node: i, Peer: -1, Key: key})
		c.Record(Span{Trace: id, Phase: PhaseGrant, At: float64(i + 1), Node: i, Peer: -1, Key: key})
		c.Record(Span{Trace: id, Phase: PhaseRelease, At: float64(i + 2), Node: i, Peer: -1, Key: key})
	}
	slow := c.SlowestFor("key-1", 10)
	if len(slow) != 2 {
		t.Fatalf("SlowestFor(key-1) returned %d traces, want 2", len(slow))
	}
	for _, tr := range slow {
		if tr.Key != "key-1" {
			t.Errorf("SlowestFor returned key %q", tr.Key)
		}
	}
	if slow[0].Wait() < slow[1].Wait() {
		t.Error("SlowestFor not sorted slowest first")
	}
}

// TestNilCollector pins the disabled-tracing contract: every method is a
// no-op on a nil receiver, so call sites need no guards.
func TestNilCollector(t *testing.T) {
	var c *Collector
	c.Record(span(MakeID(0, 1), PhaseEnqueue, 0))
	if got := c.Completed(); got != nil {
		t.Errorf("nil Completed() = %v", got)
	}
	if a, b, d := c.Totals(); a != 0 || b != 0 || d != 0 {
		t.Error("nil Totals() non-zero")
	}
	if got := c.Since(); got != 0 {
		t.Errorf("nil Since() = %v", got)
	}
	if got := c.Slowest(3); got != nil {
		t.Errorf("nil Slowest() = %v", got)
	}
}

// TestZeroTraceIgnored pins that untraced spans never pollute the
// collector — the zero ID is the "tracing off for this request" path.
func TestZeroTraceIgnored(t *testing.T) {
	c := NewCollector(4)
	c.Record(Span{Trace: 0, Phase: PhaseEnqueue, At: 0})
	if _, open, _ := c.Totals(); open != 0 {
		t.Errorf("zero-ID span opened a trace (open = %d)", open)
	}
}
