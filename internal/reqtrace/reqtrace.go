// Package reqtrace answers "where did THIS lock request spend its time":
// end-to-end request traces across the nodes of a DME group, and a flight
// recorder that captures the envelope traffic of a live run for offline,
// deterministic re-execution in the simulation kernel (replay.go).
//
// A request acquires a trace ID when the application asks for the lock
// (live.Node mints it at Lock/LockFence/TryLockContext entry; the sim
// adapter mints it on the workload arrival). The ID is derived from the
// requester's node id and its per-node request sequence number — exactly
// the (node, seq) identity the core protocol stamps on QEntry — so spans
// recorded by the requester's runtime and spans recorded by protocol
// observers on OTHER nodes (batch inclusion at the arbiter, token hops)
// agree on the ID without any coordination.
//
// Spans are point events on a shared clock (a Collector's epoch in live
// runs, virtual time in simulations); phase durations fall out of the
// deltas between consecutive spans. The same span phases are produced by
// the live runtime and the simulation harness, so a request's life reads
// identically in both:
//
//	enqueue → batch → token-hop* → grant → release
//
// Baseline algorithms have no observer hook, so their traces carry only
// the runtime-side spans (enqueue, grant, release) — wait and hold times
// still measure correctly; the protocol-phase breakdown is a core-protocol
// feature.
package reqtrace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ID identifies one application-level lock request across nodes. It packs
// the requester's node id (biased by one, so node 0 yields non-zero IDs)
// above the requester's private request sequence number, mirroring the
// core protocol's QEntry identity: request seq s of node n gets the same
// ID no matter which node derives it. The zero ID means "untraced".
type ID uint64

// seqBits is how much of the ID the per-node sequence number occupies.
// 2^40 requests per node per incarnation outlasts any run we drive; the
// remaining high bits hold node+1, good for ~16M nodes.
const seqBits = 40

// MakeID derives the trace ID of node's seq-th request (seq counts from 1,
// matching the core protocol's sequence numbering).
func MakeID(node int, seq uint64) ID {
	return ID(uint64(node+1)<<seqBits | seq&(1<<seqBits-1))
}

// Node returns the requester's node id.
func (id ID) Node() int { return int(id>>seqBits) - 1 }

// Seq returns the requester's per-node request sequence number.
func (id ID) Seq() uint64 { return uint64(id) & (1<<seqBits - 1) }

// String renders the ID as "node-seq", the form shown on admin surfaces.
func (id ID) String() string {
	if id == 0 {
		return "-"
	}
	return fmt.Sprintf("%d-%d", id.Node(), id.Seq())
}

// Phase classifies one span of a request's life.
type Phase string

// The span phases, in causal order. TokenHop may repeat (one per
// PRIVILEGE transfer while the request heads the token's Q-list); the
// others appear at most once per request.
const (
	// PhaseEnqueue: the application asked for the lock (Lock entry /
	// workload arrival); the protocol request is issued.
	PhaseEnqueue Phase = "enqueue"
	// PhaseBatch: the current arbiter accepted the request into the batch
	// it is collecting (§2.1's request-collection phase).
	PhaseBatch Phase = "batch"
	// PhaseTokenHop: a node sent the token (PRIVILEGE) onward while this
	// request headed its Q-list — the token is traveling to serve it.
	PhaseTokenHop Phase = "token-hop"
	// PhaseGrant: the requester entered the critical section.
	PhaseGrant Phase = "grant"
	// PhaseRelease: the requester released the critical section.
	PhaseRelease Phase = "release"
)

// Span is one point event in a request's life. At is seconds on the
// recording Collector's clock (wall-clock since its epoch in live runs,
// virtual time in simulations).
type Span struct {
	Trace ID      `json:"trace"`
	Phase Phase   `json:"phase"`
	At    float64 `json:"at"`
	// Node is where the span was observed (the arbiter for batch spans,
	// the sending node for token hops, the requester for the rest).
	Node int `json:"node"`
	// Peer is the destination of a token hop; -1 otherwise.
	Peer int `json:"peer,omitempty"`
	// Key is the lock key of the DME group, for multi-key services.
	Key string `json:"key,omitempty"`
	// Fence is the grant's fencing token (grant spans only).
	Fence uint64 `json:"fence,omitempty"`
	// Batch is the batch length at acceptance (batch spans only).
	Batch int `json:"batch,omitempty"`
}

// Trace is one request's assembled span list, causally ordered by At.
type Trace struct {
	ID    ID     `json:"id"`
	Key   string `json:"key,omitempty"`
	Spans []Span `json:"spans"`
}

// at returns the time of the first span with the given phase.
func (t Trace) at(p Phase) (float64, bool) {
	for _, s := range t.Spans {
		if s.Phase == p {
			return s.At, true
		}
	}
	return 0, false
}

// Wait returns the enqueue→grant duration (the paper's waiting time for
// this one request), or 0 when either endpoint is missing.
func (t Trace) Wait() float64 {
	enq, ok1 := t.at(PhaseEnqueue)
	grant, ok2 := t.at(PhaseGrant)
	if !ok1 || !ok2 || grant < enq {
		return 0
	}
	return grant - enq
}

// Hold returns the grant→release duration, or 0 when either endpoint is
// missing.
func (t Trace) Hold() float64 {
	grant, ok1 := t.at(PhaseGrant)
	rel, ok2 := t.at(PhaseRelease)
	if !ok1 || !ok2 || rel < grant {
		return 0
	}
	return rel - grant
}

// Hops counts the token transfers made while this request headed the
// Q-list — the per-request share of token movement.
func (t Trace) Hops() int {
	hops := 0
	for _, s := range t.Spans {
		if s.Phase == PhaseTokenHop {
			hops++
		}
	}
	return hops
}

// Fence returns the grant's fencing token, or 0 if the trace has no
// grant span.
func (t Trace) Fence() uint64 {
	for _, s := range t.Spans {
		if s.Phase == PhaseGrant {
			return s.Fence
		}
	}
	return 0
}

// Step is one row of a per-phase breakdown: the span plus the time since
// the previous span — where the request spent that slice of its life.
type Step struct {
	Phase Phase   `json:"phase"`
	Node  int     `json:"node"`
	Peer  int     `json:"peer,omitempty"`
	At    float64 `json:"at"`
	Delta float64 `json:"delta"`
}

// Summary is the admin-surface form of a trace: stable identifiers,
// derived durations, and the per-phase breakdown.
type Summary struct {
	ID    string  `json:"id"`
	Key   string  `json:"key,omitempty"`
	Start float64 `json:"start"`
	Wait  float64 `json:"wait_seconds"`
	Hold  float64 `json:"hold_seconds"`
	Hops  int     `json:"token_hops"`
	Fence uint64  `json:"fence,omitempty"`
	Steps []Step  `json:"steps"`
}

// Summarize builds the Summary view of the trace.
func (t Trace) Summarize() Summary {
	sum := Summary{
		ID:    t.ID.String(),
		Key:   t.Key,
		Wait:  t.Wait(),
		Hold:  t.Hold(),
		Hops:  t.Hops(),
		Fence: t.Fence(),
	}
	if len(t.Spans) > 0 {
		sum.Start = t.Spans[0].At
	}
	prev := sum.Start
	for _, s := range t.Spans {
		sum.Steps = append(sum.Steps, Step{
			Phase: s.Phase,
			Node:  s.Node,
			Peer:  s.Peer,
			At:    s.At,
			Delta: s.At - prev,
		})
		prev = s.At
	}
	return sum
}

// DefaultDepth is a Collector's completed-trace ring capacity when
// NewCollector is given zero.
const DefaultDepth = 256

// defaultMaxOpen bounds in-flight (unreleased) traces; beyond it the
// oldest open trace is dropped — a leak guard against requests that never
// complete (cancelled Locks whose grant never comes, captures of crashed
// peers).
const defaultMaxOpen = 4096

// Collector accumulates spans into traces: spans for an ID collect in an
// open table until the release span arrives, then the assembled trace
// moves to a bounded ring of completed traces. One Collector is typically
// shared by every node of an in-process cluster (and by every key of a
// Manager), so a request's spans from all the nodes it crossed land in
// one place. All methods are safe for concurrent use and are no-ops on a
// nil receiver, so a disabled tracer costs one pointer test.
type Collector struct {
	epoch time.Time

	mu      sync.Mutex
	open    map[ID]*Trace
	order   []ID // open-trace FIFO for eviction
	done    []Trace
	next    int // ring write position
	total   uint64
	dropped uint64
}

// NewCollector returns a collector keeping the last depth completed
// traces (0 means DefaultDepth). Its clock starts now.
func NewCollector(depth int) *Collector {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Collector{
		epoch: time.Now(),
		open:  make(map[ID]*Trace),
		done:  make([]Trace, 0, depth),
	}
}

// Since returns seconds since the collector's epoch — the At clock for
// live spans. Virtual-time recorders (the sim adapter) ignore it and pass
// their own times.
func (c *Collector) Since() float64 {
	if c == nil {
		return 0
	}
	return time.Since(c.epoch).Seconds()
}

// Record appends one span to its trace; a release span completes the
// trace and moves it to the ring. Untraced spans (zero ID) and nil
// collectors are ignored.
func (c *Collector) Record(s Span) {
	if c == nil || s.Trace == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.open[s.Trace]
	if !ok {
		if len(c.open) >= defaultMaxOpen {
			c.evictOldestLocked()
		}
		tr = &Trace{ID: s.Trace, Key: s.Key}
		c.open[s.Trace] = tr
		c.order = append(c.order, s.Trace)
	}
	if tr.Key == "" {
		tr.Key = s.Key
	}
	tr.Spans = append(tr.Spans, s)
	if s.Phase == PhaseRelease {
		delete(c.open, s.Trace)
		c.pushDoneLocked(*tr)
	}
}

// evictOldestLocked drops the oldest still-open trace (mu held).
func (c *Collector) evictOldestLocked() {
	for len(c.order) > 0 {
		id := c.order[0]
		c.order = c.order[1:]
		if _, ok := c.open[id]; ok {
			delete(c.open, id)
			c.dropped++
			return
		}
	}
}

// pushDoneLocked appends a completed trace to the ring (mu held).
func (c *Collector) pushDoneLocked(tr Trace) {
	c.total++
	if len(c.done) < cap(c.done) {
		c.done = append(c.done, tr)
		return
	}
	c.done[c.next] = tr
	c.next = (c.next + 1) % cap(c.done)
}

// Completed returns the buffered completed traces, oldest first.
func (c *Collector) Completed() []Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Trace, 0, len(c.done))
	if len(c.done) < cap(c.done) {
		return append(out, c.done...)
	}
	out = append(out, c.done[c.next:]...)
	return append(out, c.done[:c.next]...)
}

// Totals reports how many traces have ever completed, how many are open
// in flight, and how many open traces were evicted unfinished.
func (c *Collector) Totals() (completed, open, dropped uint64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total, uint64(len(c.open)), c.dropped
}

// Lookup returns the completed trace with the given ID, newest match
// first, or false if the ring no longer holds it.
func (c *Collector) Lookup(id ID) (Trace, bool) {
	traces := c.Completed()
	for i := len(traces) - 1; i >= 0; i-- {
		if traces[i].ID == id {
			return traces[i], true
		}
	}
	return Trace{}, false
}

// Slowest returns the n completed traces with the longest waits, slowest
// first. A negative n means all.
func (c *Collector) Slowest(n int) []Trace {
	return slowest(c.Completed(), n)
}

// SlowestFor is Slowest restricted to one lock key.
func (c *Collector) SlowestFor(key string, n int) []Trace {
	all := c.Completed()
	kept := all[:0:0]
	for _, tr := range all {
		if tr.Key == key {
			kept = append(kept, tr)
		}
	}
	return slowest(kept, n)
}

func slowest(traces []Trace, n int) []Trace {
	sort.SliceStable(traces, func(i, j int) bool {
		return traces[i].Wait() > traces[j].Wait()
	})
	if n >= 0 && len(traces) > n {
		traces = traces[:n]
	}
	return traces
}
