package reqtrace

import (
	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
)

// CoreObserver adapts the core protocol's observer hook to span
// recording: batch-inclusion and token-hop events carry the owning
// request's (node, seq) identity, which derives the same trace ID the
// requester's runtime minted at Lock entry. Install it in the observer
// fan-out (core.FanOut) next to metrics and logging; now supplies span
// timestamps — Collector.Since for live runs, the runner's virtual clock
// for simulations — so sim and live runs produce identical span shapes.
func CoreObserver(c *Collector, key string, now func() float64) func(core.Event) {
	if c == nil {
		return nil
	}
	return func(ev core.Event) {
		switch ev.Kind {
		case core.EventRequestAccepted:
			c.Record(Span{
				Trace: MakeID(ev.Req, ev.ReqSeq),
				Phase: PhaseBatch,
				At:    now(),
				Node:  ev.Node,
				Peer:  -1,
				Key:   key,
				Batch: ev.Batch,
			})
		case core.EventTokenPassed:
			if ev.ReqSeq == 0 {
				return // no request heads this transfer (empty Q-list hand-off)
			}
			c.Record(Span{
				Trace: MakeID(ev.Req, ev.ReqSeq),
				Phase: PhaseTokenHop,
				At:    now(),
				Node:  ev.Node,
				Peer:  ev.Arbiter,
				Key:   key,
			})
		}
	}
}

// SimTracer mints trace IDs and records runtime-side spans (enqueue,
// grant, release) for a simulation run, the counterpart of what
// live.Node does for live runs: install Trace as (or inside)
// dme.Config.Trace and pair it with CoreObserver on the algorithm's
// observer hook for the protocol-side spans.
//
// Request-to-grant matching is per-node FIFO — the n-th grant at a node
// completes that node's n-th request — which is exactly the contract the
// live runtime's waiter queue implements, so sim and live traces agree
// even when a node's requests are served out of issue order.
type SimTracer struct {
	c    *Collector
	key  string
	seq  []uint64 // per-node request sequence, counting from 1 like core
	fifo [][]ID   // per-node open (granted-pending) request IDs
	inCS []ID     // per-node ID currently holding the CS
}

// NewSimTracer returns a tracer for an n-node run recording into c.
func NewSimTracer(c *Collector, key string, n int) *SimTracer {
	return &SimTracer{
		c:    c,
		key:  key,
		seq:  make([]uint64, n),
		fifo: make([][]ID, n),
		inCS: make([]ID, n),
	}
}

// Trace consumes one simulation event; wire it to dme.Config.Trace.
func (t *SimTracer) Trace(ev dme.TraceEvent) {
	switch ev.Kind {
	case dme.TraceRequest:
		t.seq[ev.From]++
		id := MakeID(ev.From, t.seq[ev.From])
		t.fifo[ev.From] = append(t.fifo[ev.From], id)
		t.c.Record(Span{
			Trace: id, Phase: PhaseEnqueue, At: ev.Time,
			Node: ev.From, Peer: -1, Key: t.key,
		})
	case dme.TraceEnterCS:
		q := t.fifo[ev.From]
		if len(q) == 0 {
			return
		}
		id := q[0]
		t.fifo[ev.From] = q[1:]
		t.inCS[ev.From] = id
		t.c.Record(Span{
			Trace: id, Phase: PhaseGrant, At: ev.Time,
			Node: ev.From, Peer: -1, Key: t.key,
		})
	case dme.TraceExitCS:
		id := t.inCS[ev.From]
		if id == 0 {
			return
		}
		t.inCS[ev.From] = 0
		t.c.Record(Span{
			Trace: id, Phase: PhaseRelease, At: ev.Time,
			Node: ev.From, Peer: -1, Key: t.key,
		})
	}
}
