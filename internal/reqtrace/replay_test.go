package reqtrace

import (
	"testing"

	"tokenarbiter/internal/registry"
)

// syntheticCapture is the smallest meaningful capture: one node (which
// holds the initial token, so requests grant locally with no wire
// traffic) issuing two lock/unlock cycles. Timestamps leave room for the
// protocol's request-collection window before each recorded release, as
// any real capture's would.
func syntheticCapture(algo string) *Capture {
	return &Capture{
		Header: CaptureHeader{V: CaptureVersion, Algo: algo, N: 1},
		Records: []Record{
			{T: 0.0, Ev: EvRequest, Node: 0, Peer: -1, Trace: uint64(MakeID(0, 1))},
			{T: 0.5, Ev: EvRelease, Node: 0, Peer: -1, Trace: uint64(MakeID(0, 1))},
			{T: 0.6, Ev: EvRequest, Node: 0, Peer: -1, Trace: uint64(MakeID(0, 2))},
			{T: 1.2, Ev: EvRelease, Node: 0, Peer: -1, Trace: uint64(MakeID(0, 2))},
		},
	}
}

func TestReplaySingleNode(t *testing.T) {
	algo, err := registry.RegisterWire(registry.Core)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := registry.NewLiveFactory(algo, nil)
	if err != nil {
		t.Fatal(err)
	}
	collector := NewCollector(DefaultDepth)
	res, err := Replay(syntheticCapture(algo), factory, collector)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grants) != 2 {
		t.Fatalf("replay produced %d grants, want 2 (result %+v)", len(res.Grants), res)
	}
	for i, g := range res.Grants {
		if g.Node != 0 {
			t.Errorf("grant %d at node %d, want 0", i, g.Node)
		}
	}
	// Grant fences advance monotonically through the replayed machines.
	if res.Grants[0].Fence >= res.Grants[1].Fence {
		t.Errorf("fences %d, %d not increasing", res.Grants[0].Fence, res.Grants[1].Fence)
	}
	if res.OrphanReleases != 0 || res.OpenErrors != 0 {
		t.Errorf("orphans=%d openErrors=%d, want 0/0", res.OrphanReleases, res.OpenErrors)
	}
}

func TestReplayRejectsBadCapture(t *testing.T) {
	factory, err := registry.NewLiveFactory(registry.Core, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(nil, factory, nil); err == nil {
		t.Error("Replay accepted a nil capture")
	}
	if _, err := Replay(&Capture{}, factory, nil); err == nil {
		t.Error("Replay accepted a headerless capture")
	}
}

func TestGrantLogCanonical(t *testing.T) {
	grants := []GrantEvent{
		{Key: "a", Node: 1, Fence: 2, T: 0.5},
		{Key: "", Node: 0, Fence: 0, T: 1.25},
	}
	want := "key=\"a\" node=1 fence=2 t=0.500000000\n" +
		"key=\"\" node=0 fence=0 t=1.250000000\n"
	if got := string(GrantLog(grants)); got != want {
		t.Errorf("GrantLog:\n%s\nwant:\n%s", got, want)
	}
	if len(GrantLog(nil)) != 0 {
		t.Error("empty grant list rendered non-empty log")
	}
}
