package reqtrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/sim"
	"tokenarbiter/internal/wire"
)

// Capture is a parsed flight-recorder file: the header plus every record
// in file order.
type Capture struct {
	Header  CaptureHeader
	Records []Record
}

// ReadCapture parses a capture stream written by Recorder. Blank lines
// are skipped; any malformed line is an error (a capture is evidence —
// silently dropping lines would make replays lie).
func ReadCapture(r io.Reader) (*Capture, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cap Capture
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if line == 1 {
			if err := json.Unmarshal(raw, &cap.Header); err != nil {
				return nil, fmt.Errorf("reqtrace: capture header: %w", err)
			}
			if cap.Header.V != CaptureVersion {
				return nil, fmt.Errorf("reqtrace: capture version %d, this build reads v%d",
					cap.Header.V, CaptureVersion)
			}
			if cap.Header.N < 1 {
				return nil, fmt.Errorf("reqtrace: capture header has n=%d", cap.Header.N)
			}
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("reqtrace: capture line %d: %w", line, err)
		}
		cap.Records = append(cap.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reqtrace: read capture: %w", err)
	}
	if line == 0 {
		return nil, fmt.Errorf("reqtrace: empty capture")
	}
	return &cap, nil
}

// GrantEvent is one critical-section grant observed during (or recorded
// in) a capture, identified by key, grantee and fencing token.
type GrantEvent struct {
	Key   string  `json:"key,omitempty"`
	Node  int     `json:"node"`
	Fence uint64  `json:"fence,omitempty"`
	T     float64 `json:"t"`
}

// ReplayResult is what a deterministic re-execution produced.
type ReplayResult struct {
	// Grants is the grant sequence the replayed state machines produced,
	// in deterministic execution order (keys replayed in sorted order).
	Grants []GrantEvent
	// Recorded is the grant sequence the original live run logged
	// (EvGrant records), for fidelity comparison against Grants.
	Recorded []GrantEvent
	// SuppressedSends counts outbound messages the replayed machines
	// generated that were not delivered — in replay the wire is the
	// capture, so regenerated cross-node traffic is dropped by design.
	SuppressedSends uint64
	// OrphanReleases counts recorded releases arriving while the
	// replayed node was not in the critical section (timing divergence
	// between the live run and the replayed timeline).
	OrphanReleases uint64
	// OpenErrors counts recorded envelopes that failed wire.Open.
	OpenErrors uint64
}

// GrantLog renders a grant sequence in a canonical byte form; two
// replays of the same capture are deterministic iff their GrantLogs are
// byte-identical, which is exactly what the CI determinism check
// asserts.
func GrantLog(grants []GrantEvent) []byte {
	var buf bytes.Buffer
	for _, g := range grants {
		fmt.Fprintf(&buf, "key=%q node=%d fence=%d t=%.9f\n", g.Key, g.Node, g.Fence, g.T)
	}
	return buf.Bytes()
}

// Replay re-executes a capture against fresh protocol state machines on
// the deterministic simulation kernel: each key's records are ingested
// at their recorded timestamps (requests as OnRequest, received
// envelopes as OnMessage through the normal wire.Open path, releases as
// OnCSDone), while protocol timers run naturally in virtual time.
// Outbound sends the replayed machines generate are suppressed — the
// capture already holds every delivery that actually happened — so the
// replay is closed under the capture and two replays of the same bytes
// produce the same grant sequence.
//
// The factory builds one node's state machine, same shape as
// registry.LiveFactory; obs is wired to a CoreObserver recording
// protocol-phase spans into collector (pass nil to skip span
// collection).
func Replay(cap *Capture, factory func(id, n int, obs func(core.Event)) (dme.Node, error), collector *Collector) (*ReplayResult, error) {
	if cap == nil || cap.Header.N < 1 {
		return nil, fmt.Errorf("reqtrace: nil or headerless capture")
	}
	res := &ReplayResult{}
	byKey := map[string][]Record{}
	for _, rec := range cap.Records {
		if rec.Ev == EvGrant {
			res.Recorded = append(res.Recorded, GrantEvent{
				Key: rec.Key, Node: rec.Node, Fence: rec.Fence, T: rec.T,
			})
		}
		byKey[rec.Key] = append(byKey[rec.Key], rec)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := replayKey(cap.Header, key, byKey[key], factory, collector, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// replayKey runs one key's records on its own kernel instance (keys are
// independent DME groups, exactly as the live Manager shards them).
func replayKey(hdr CaptureHeader, key string, recs []Record,
	factory func(id, n int, obs func(core.Event)) (dme.Node, error),
	collector *Collector, res *ReplayResult) error {

	s := sim.New(1) // fixed seed: the replayed randomness stream is part of determinism
	ctx := &replayCtx{s: s, key: key, res: res}
	nodes := make([]dme.Node, hdr.N)
	for i := range nodes {
		obs := CoreObserver(collector, key, s.Now)
		nd, err := factory(i, hdr.N, obs)
		if err != nil {
			return fmt.Errorf("reqtrace: replay key %q: build node %d: %w", key, i, err)
		}
		nodes[i] = nd
	}
	ctx.nodes = nodes
	ctx.grants = make([]uint64, hdr.N)
	ctx.releases = make([]uint64, hdr.N)
	for _, nd := range nodes {
		nd.Init(ctx)
	}

	// Recorded lifecycle events double as runtime-side spans: combined
	// with the protocol spans the replayed machines emit through
	// CoreObserver, the collector assembles the same full traces a live
	// run's collector holds — enqueue/grant/release at recorded times,
	// batch and token hops at replayed times on the same virtual clock.
	recordSpan := func(rec Record, phase Phase) {
		if rec.Trace == 0 {
			return
		}
		s.PostAt(rec.T, func() {
			collector.Record(Span{
				Trace: ID(rec.Trace), Phase: phase, At: rec.T,
				Node: rec.Node, Peer: -1, Key: key, Fence: rec.Fence,
			})
		})
	}

	var lastT float64
	for _, rec := range recs {
		if rec.T > lastT {
			lastT = rec.T
		}
		rec := rec
		switch rec.Ev {
		case EvRequest:
			recordSpan(rec, PhaseEnqueue)
			s.PostAt(rec.T, func() { nodes[rec.Node].OnRequest(ctx) })
		case EvRecv:
			if rec.Env == nil {
				res.OpenErrors++
				continue
			}
			msg, err := rec.Env.Open(hdr.Algo)
			if err != nil {
				res.OpenErrors++
				continue
			}
			// Strip the transport-layer wrappers the way the live stack
			// does (KeyMux strips the key, the node the trace); replay
			// drives the state machines with the bare message.
			msg, _, _ = wire.Unwrap(msg)
			s.PostAt(rec.T, func() { nodes[rec.Node].OnMessage(ctx, rec.Peer, msg) })
		case EvGrant:
			recordSpan(rec, PhaseGrant)
		case EvRelease:
			recordSpan(rec, PhaseRelease)
			s.PostAt(rec.T, func() {
				if ctx.grants[rec.Node] > ctx.releases[rec.Node] {
					ctx.releases[rec.Node]++
					nodes[rec.Node].OnCSDone(ctx)
					return
				}
				res.OrphanReleases++
			})
		}
		// EvSend records are informational: sends are regenerated (and
		// suppressed) by the replayed machines. EvGrant records were
		// folded into res.Recorded by the caller; here they only
		// contribute their span.
	}

	// Run past the last record; the +1.0 horizon lets in-flight timers at
	// the capture's tail fire once while stopping the retransmit timers
	// of never-granted requests from re-arming forever.
	horizon := lastT + 1.0
	s.RunUntil(func() bool { return s.Now() > horizon })
	return nil
}

// replayCtx is the dme.Context a replay runs under: virtual time from
// the kernel, self-sends and timers live, cross-node sends suppressed
// (the capture is the wire), EnterCS recorded as the replay's output.
type replayCtx struct {
	s        *sim.Simulator
	key      string
	nodes    []dme.Node
	res      *ReplayResult
	grants   []uint64 // per-node EnterCS count
	releases []uint64 // per-node OnCSDone count (capture-driven)
}

// Now implements dme.Context.
func (c *replayCtx) Now() float64 { return c.s.Now() }

// N implements dme.Context.
func (c *replayCtx) N() int { return len(c.nodes) }

// Send suppresses cross-node traffic (deliveries come from the capture)
// and loops self-sends back with zero delay, as every Context does.
func (c *replayCtx) Send(from, to dme.NodeID, msg dme.Message) {
	if from != to {
		c.res.SuppressedSends++
		return
	}
	c.s.Post(0, func() { c.nodes[to].OnMessage(c, from, msg) })
}

// Broadcast implements dme.Context; all targets are remote, so the whole
// fan-out is suppressed.
func (c *replayCtx) Broadcast(from dme.NodeID, msg dme.Message) {
	c.res.SuppressedSends += uint64(len(c.nodes) - 1)
}

// After implements dme.Context on the kernel's timer records.
func (c *replayCtx) After(node dme.NodeID, delay float64, fn func()) dme.Timer {
	ev := c.s.Schedule(delay, fn)
	return dme.MakeTimer(c, ev.ID(), ev.Gen())
}

// Cancel implements dme.Context.
func (c *replayCtx) Cancel(t dme.Timer) { t.Cancel() }

// CancelTimer implements dme.TimerHost for the timers After hands out.
func (c *replayCtx) CancelTimer(id int32, gen uint32) { c.s.CancelID(id, gen) }

// EnterCS records a grant — the replay's observable output. OnCSDone is
// NOT scheduled here: the critical-section duration is not simulated,
// the recorded release drives it.
func (c *replayCtx) EnterCS(node dme.NodeID) {
	c.grants[node]++
	var fence uint64
	if ins, ok := core.Inspect(c.nodes[node]); ok {
		fence = ins.LastFence
	}
	c.res.Grants = append(c.res.Grants, GrantEvent{
		Key: c.key, Node: node, Fence: fence, T: c.s.Now(),
	})
}

// Rand implements dme.Context from the kernel's seeded stream.
func (c *replayCtx) Rand() float64 { return c.s.RNG().Float64() }
