package reqtrace_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/reqtrace"
	"tokenarbiter/internal/transport"
)

// TestReplayDeterminism is the end-to-end contract the flight recorder
// exists for: capture a live 3-node multi-key run, replay the capture
// twice against fresh state machines, and require the two replays'
// grant/fence sequences to be byte-identical. CI runs this as the
// replay-determinism gate.
func TestReplayDeterminism(t *testing.T) {
	algo, err := registry.RegisterWire(registry.Core)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	var buf bytes.Buffer
	rec, err := reqtrace.NewRecorder(&buf, algo, n)
	if err != nil {
		t.Fatal(err)
	}
	tracer := reqtrace.NewCollector(reqtrace.DefaultDepth)

	// A 3-node multi-key cluster over an in-memory network, every node
	// sharing one recorder so the capture holds the whole cluster's
	// traffic and lock lifecycle.
	net := transport.NewMemNetwork(n, transport.MemOptions{})
	defer net.Close()
	opts := core.Options{Treq: 0.005, Tfwd: 0.005, RetransmitTimeout: 0.25}
	mgrs := make([]*live.Manager, n)
	for i := 0; i < n; i++ {
		m, err := live.NewManager(live.ManagerConfig{
			ID: i, N: n,
			Transport: transport.Chain(net.Endpoint(i), rec.Middleware()),
			Factory:   registry.CoreLiveFactory(opts),
			Algo:      algo,
			Seed:      uint64(i + 1),
			Tracer:    tracer,
			FlightRec: rec,
		})
		if err != nil {
			t.Fatalf("manager %d: %v", i, err)
		}
		mgrs[i] = m
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	keys := []string{"orders", "billing"}
	want := 0
	for round := 0; round < 3; round++ {
		for _, key := range keys {
			for i := 0; i < n; i++ {
				if _, err := mgrs[i].LockFence(ctx, key); err != nil {
					t.Fatalf("round %d key %q node %d: %v", round, key, i, err)
				}
				mgrs[i].Unlock(key)
				want++
			}
		}
	}
	for _, m := range mgrs {
		_ = m.Close()
	}

	capture, err := reqtrace.ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(capture.Records) == 0 {
		t.Fatal("live run produced an empty capture")
	}
	if len(capture.Records) < want {
		t.Fatalf("capture holds %d records for %d critical sections", len(capture.Records), want)
	}

	factory, err := registry.NewLiveFactory(algo, map[string]float64{"treq": 0.005, "tfwd": 0.005})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *reqtrace.ReplayResult {
		res, err := reqtrace.Replay(capture, factory, reqtrace.NewCollector(reqtrace.DefaultDepth))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res1, res2 := run(), run()

	log1, log2 := reqtrace.GrantLog(res1.Grants), reqtrace.GrantLog(res2.Grants)
	if !bytes.Equal(log1, log2) {
		t.Fatalf("two replays of the same capture diverged:\n--- first\n%s--- second\n%s", log1, log2)
	}
	if len(res1.Grants) == 0 {
		t.Fatalf("replay produced no grants (recorded %d, suppressed %d sends, %d open errors)",
			len(res1.Recorded), res1.SuppressedSends, res1.OpenErrors)
	}
	if res1.OpenErrors != 0 {
		t.Errorf("replay failed to open %d captured envelopes", res1.OpenErrors)
	}
	t.Logf("capture: %d records; recorded %d grants, replayed %d (suppressed %d sends, %d orphan releases)",
		len(capture.Records), len(res1.Recorded), len(res1.Grants),
		res1.SuppressedSends, res1.OrphanReleases)
}
