package reqtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/transport"
	"tokenarbiter/internal/wire"
)

// CaptureVersion is the flight-recorder capture format generation.
const CaptureVersion = 1

// CaptureHeader is the first line of a capture file: enough metadata to
// rebuild the cluster the capture came from (which algorithm's state
// machines to instantiate, and how many).
type CaptureHeader struct {
	V    int    `json:"v"`
	Algo string `json:"algo"`
	N    int    `json:"n"`
}

// Capture record event kinds. Send/recv are wire-level (one per envelope
// crossing the recorder's transport layer); req/grant/rel are
// application-level lock lifecycle events recorded by the runtime.
const (
	EvSend    = "send"
	EvRecv    = "recv"
	EvRequest = "req"
	EvGrant   = "grant"
	EvRelease = "rel"
)

// Record is one timestamped capture entry. T is seconds since the
// recorder's epoch — replay treats it as virtual time, so a capture's
// timeline is self-contained. Env is present only on send/recv records;
// it is the full wire envelope (Payload base64-encoded by encoding/json),
// so a capture can be re-opened by wire.Envelope.Open and replayed
// through the same decode path live traffic takes.
type Record struct {
	T     float64        `json:"t"`
	Ev    string         `json:"ev"`
	Node  int            `json:"node"`
	Peer  int            `json:"peer"`
	Key   string         `json:"key,omitempty"`
	Trace uint64         `json:"trace,omitempty"`
	Fence uint64         `json:"fence,omitempty"`
	Env   *wire.Envelope `json:"env,omitempty"`
}

// Recorder writes a flight-recorder capture: a JSONL stream with one
// CaptureHeader line followed by Record lines in write order. It layers
// into a node two ways at once: Middleware captures every envelope
// crossing the transport (send and recv), and the Record* methods let
// the runtime log the application-level lock lifecycle (request, grant,
// release) that wire traffic alone cannot show.
//
// All methods are safe on a nil receiver (no-ops), so callers thread an
// optional recorder without guarding every call site. Writes are
// serialized by a mutex; a write or seal failure drops that record and
// counts it (Dropped) rather than failing the node.
type Recorder struct {
	algo  string
	n     int
	epoch time.Time

	mu      sync.Mutex
	w       io.Writer
	c       io.Closer // non-nil when the recorder owns the sink
	records uint64
	dropped uint64
}

// NewRecorder starts a capture on w for an n-node cluster running the
// named algorithm, writing the header line immediately.
func NewRecorder(w io.Writer, algo string, n int) (*Recorder, error) {
	r := &Recorder{algo: algo, n: n, epoch: time.Now(), w: w}
	hdr, err := json.Marshal(CaptureHeader{V: CaptureVersion, Algo: algo, N: n})
	if err != nil {
		return nil, fmt.Errorf("reqtrace: encode capture header: %w", err)
	}
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return nil, fmt.Errorf("reqtrace: write capture header: %w", err)
	}
	return r, nil
}

// CreateRecorder creates (truncating) the capture file at path and
// starts a capture into it; Close closes the file.
func CreateRecorder(path, algo string, n int) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("reqtrace: create capture %s: %w", path, err)
	}
	r, err := NewRecorder(f, algo, n)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.c = f
	return r, nil
}

// Close flushes and closes the underlying sink if the recorder owns it.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}

// Since returns seconds since the recorder's epoch — the T value the
// next record written now would carry.
func (r *Recorder) Since() float64 {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch).Seconds()
}

// Totals returns the number of records written and dropped so far.
func (r *Recorder) Totals() (records, dropped uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.records, r.dropped
}

// write appends one record line; errors count as drops.
func (r *Recorder) write(rec Record) {
	line, err := json.Marshal(rec)
	if err != nil {
		r.mu.Lock()
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		r.dropped++
		return
	}
	r.records++
}

// recordEnvelope captures one wire crossing. sender is the envelope's
// From; node/peer are the local endpoint's view (node = local id).
func (r *Recorder) recordEnvelope(ev string, node, peer, sender int, msg dme.Message) {
	if r == nil {
		return
	}
	env, err := wire.Seal(r.algo, sender, msg)
	if err != nil {
		r.mu.Lock()
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.write(Record{
		T: r.Since(), Ev: ev, Node: node, Peer: peer,
		Key: env.Key, Trace: env.Trace, Env: &env,
	})
}

// RecordRequest logs an application lock request entering the runtime.
func (r *Recorder) RecordRequest(node int, key string, trace ID) {
	if r == nil {
		return
	}
	r.write(Record{T: r.Since(), Ev: EvRequest, Node: node, Peer: -1,
		Key: key, Trace: uint64(trace)})
}

// RecordGrant logs a critical-section grant with its fencing token.
func (r *Recorder) RecordGrant(node int, key string, trace ID, fence uint64) {
	if r == nil {
		return
	}
	r.write(Record{T: r.Since(), Ev: EvGrant, Node: node, Peer: -1,
		Key: key, Trace: uint64(trace), Fence: fence})
}

// RecordRelease logs a critical-section release (Unlock).
func (r *Recorder) RecordRelease(node int, key string, trace ID) {
	if r == nil {
		return
	}
	r.write(Record{T: r.Since(), Ev: EvRelease, Node: node, Peer: -1,
		Key: key, Trace: uint64(trace)})
}

// Middleware returns a transport layer that captures every envelope the
// protocol sends or receives through it. Place it outermost (before
// fault injectors), so the capture shows the protocol's view of the
// traffic — what was attempted, not what survived the network. A nil
// recorder yields a nil middleware, which transport.Chain skips.
func (r *Recorder) Middleware() transport.Middleware {
	if r == nil {
		return nil
	}
	return func(next transport.Transport) transport.Transport {
		return &recordTransport{next: next, rec: r}
	}
}

// recordTransport is the Middleware's concrete layer.
type recordTransport struct {
	next transport.Transport
	rec  *Recorder
}

// Self implements transport.Transport.
func (t *recordTransport) Self() dme.NodeID { return t.next.Self() }

// Send captures the outbound message and forwards it down the stack.
func (t *recordTransport) Send(to dme.NodeID, msg dme.Message) error {
	self := t.next.Self()
	t.rec.recordEnvelope(EvSend, self, to, self, msg)
	return t.next.Send(to, msg)
}

// SetHandler installs h below a capture tap for inbound deliveries.
func (t *recordTransport) SetHandler(h transport.Handler) {
	self := t.next.Self()
	t.next.SetHandler(func(from dme.NodeID, msg dme.Message) {
		t.rec.recordEnvelope(EvRecv, self, from, from, msg)
		h(from, msg)
	})
}

// Close implements transport.Transport.
func (t *recordTransport) Close() error { return t.next.Close() }

// Unwrap implements transport.Wrapper.
func (t *recordTransport) Unwrap() transport.Transport { return t.next }
