package reqtrace

import (
	"bytes"
	"strings"
	"testing"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/transport"
	"tokenarbiter/internal/wire"
)

// loopTransport is a minimal transport for middleware tests: Send
// invokes the peer handler directly (there is only one endpoint).
type loopTransport struct {
	self    dme.NodeID
	handler transport.Handler
	sent    []dme.Message
}

func (l *loopTransport) Self() dme.NodeID { return l.self }
func (l *loopTransport) Send(to dme.NodeID, msg dme.Message) error {
	l.sent = append(l.sent, msg)
	return nil
}
func (l *loopTransport) SetHandler(h transport.Handler) { l.handler = h }
func (l *loopTransport) Close() error                   { return nil }

func TestRecorderCaptureRoundTrip(t *testing.T) {
	algo, err := registry.RegisterWire(registry.Core)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, algo, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Lifecycle records plus wire traffic through the middleware.
	rec.RecordRequest(1, "orders", MakeID(1, 1))
	base := &loopTransport{self: 1}
	tr := rec.Middleware()(base)
	tr.SetHandler(func(from dme.NodeID, msg dme.Message) {})
	msg := wire.Wrap(
		core.Request{Entry: core.QEntry{Node: 1, Seq: 1}},
		wire.WithKey("orders"),
		wire.WithTrace(uint64(MakeID(1, 1))),
	)
	if err := tr.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	base.handler(0, msg) // inbound delivery through the recv tap
	rec.RecordGrant(1, "orders", MakeID(1, 1), 7)
	rec.RecordRelease(1, "orders", MakeID(1, 1))

	if records, dropped := rec.Totals(); records != 5 || dropped != 0 {
		t.Fatalf("totals = (%d records, %d dropped), want (5, 0)", records, dropped)
	}

	capture, err := ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if capture.Header.V != CaptureVersion || capture.Header.Algo != algo || capture.Header.N != 3 {
		t.Fatalf("header %+v", capture.Header)
	}
	if len(capture.Records) != 5 {
		t.Fatalf("%d records, want 5", len(capture.Records))
	}
	wantEv := []string{EvRequest, EvSend, EvRecv, EvGrant, EvRelease}
	for i, r := range capture.Records {
		if r.Ev != wantEv[i] {
			t.Errorf("record %d ev = %q, want %q", i, r.Ev, wantEv[i])
		}
		if r.Key != "orders" {
			t.Errorf("record %d key = %q", i, r.Key)
		}
		if r.Trace != uint64(MakeID(1, 1)) {
			t.Errorf("record %d trace = %#x", i, r.Trace)
		}
	}
	// Timestamps never run backwards within a capture.
	for i := 1; i < len(capture.Records); i++ {
		if capture.Records[i].T < capture.Records[i-1].T {
			t.Errorf("record %d time %v precedes record %d time %v",
				i, capture.Records[i].T, i-1, capture.Records[i-1].T)
		}
	}

	// The send record's envelope reopens through the normal wire path
	// with both wrappers intact — what replay depends on.
	send := capture.Records[1]
	if send.Env == nil {
		t.Fatal("send record has no envelope")
	}
	if send.Fence != 0 {
		t.Errorf("send record fence = %d", send.Fence)
	}
	reopened, err := send.Env.Open(algo)
	if err != nil {
		t.Fatalf("reopen captured envelope: %v", err)
	}
	k, ok := reopened.(wire.Keyed)
	if !ok {
		t.Fatalf("captured envelope opened as %T, want Keyed", reopened)
	}
	if tr, ok := k.Msg.(wire.Traced); !ok || tr.Trace != uint64(MakeID(1, 1)) {
		t.Fatalf("captured envelope inner %#v, want Traced", k.Msg)
	}

	// Grant record carries the fence.
	if g := capture.Records[3]; g.Fence != 7 || g.Node != 1 {
		t.Errorf("grant record %+v", g)
	}
}

// TestNilRecorder pins the disabled-recording contract: nil receivers
// no-op everywhere, and a nil middleware disappears from the chain.
func TestNilRecorder(t *testing.T) {
	var rec *Recorder
	rec.RecordRequest(0, "k", 1)
	rec.RecordGrant(0, "k", 1, 1)
	rec.RecordRelease(0, "k", 1)
	if err := rec.Close(); err != nil {
		t.Errorf("nil Close() = %v", err)
	}
	if records, dropped := rec.Totals(); records != 0 || dropped != 0 {
		t.Error("nil Totals() non-zero")
	}
	if mw := rec.Middleware(); mw != nil {
		t.Error("nil recorder yielded a non-nil middleware")
	}
	base := &loopTransport{self: 0}
	chained := transport.Chain(base, rec.Middleware())
	if chained != transport.Transport(base) {
		t.Error("nil middleware altered the chain")
	}
}

func TestReadCaptureErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"future version", `{"v":99,"algo":"core","n":3}` + "\n"},
		{"zero nodes", `{"v":1,"algo":"core","n":0}` + "\n"},
		{"malformed header", "not json\n"},
		{"malformed record", `{"v":1,"algo":"core","n":3}` + "\nnot json\n"},
	}
	for _, c := range cases {
		if _, err := ReadCapture(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadCapture accepted the capture", c.name)
		}
	}
}

// TestRecorderMiddlewareUnwrap pins that the recording layer is
// transparent to transport.Find, like every other middleware.
func TestRecorderMiddlewareUnwrap(t *testing.T) {
	algo, err := registry.RegisterWire(registry.Core)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, algo, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := &loopTransport{self: 0}
	chained := transport.Chain(base, rec.Middleware())
	if found, ok := transport.Find[*loopTransport](chained); !ok || found != base {
		t.Error("Find could not see through the recording layer")
	}
}
