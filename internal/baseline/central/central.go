// Package central implements the classic centralized-coordinator mutual
// exclusion algorithm: one fixed coordinator queues REQUESTs and grants
// the critical section with GRANT/RELEASE handshakes. It costs exactly
// three messages per remote critical section at every load and serves as
// the sanity anchor for the comparison experiments.
package central

import (
	"fmt"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindRequest = "REQUEST"
	KindGrant   = "GRANT"
	KindRelease = "RELEASE"
)

type Request struct{}

func (Request) Kind() string { return KindRequest }

type Grant struct{}

func (Grant) Kind() string { return KindGrant }

type Release struct{}

func (Release) Kind() string { return KindRelease }

// Algorithm builds a centralized-coordinator instance. Coordinator is the
// coordinator's node id.
type Algorithm struct {
	Coordinator int
}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "central" }

// Build implements dme.Algorithm.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	if a.Coordinator < 0 || a.Coordinator >= cfg.N {
		return nil, fmt.Errorf("central: coordinator %d outside [0,%d)", a.Coordinator, cfg.N)
	}
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodes[i] = &node{id: i, coord: a.Coordinator}
	}
	return nodes, nil
}

type node struct {
	id    int
	coord int

	// Coordinator state.
	busy  bool
	queue []int

	// Requester state: number of locally pending CS requests; only one
	// is in flight with the coordinator at a time.
	pending  int
	inFlight bool
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node.
func (nd *node) Init(dme.Context) {}

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	nd.maybeRequest(ctx)
}

func (nd *node) maybeRequest(ctx dme.Context) {
	if nd.inFlight || nd.pending == 0 {
		return
	}
	nd.inFlight = true
	ctx.Send(nd.id, nd.coord, Request{})
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch msg.(type) {
	case Request:
		if nd.busy {
			nd.queue = append(nd.queue, from)
			return
		}
		nd.busy = true
		ctx.Send(nd.id, from, Grant{})
	case Grant:
		ctx.EnterCS(nd.id)
	case Release:
		if len(nd.queue) == 0 {
			nd.busy = false
			return
		}
		next := nd.queue[0]
		nd.queue = nd.queue[1:]
		ctx.Send(nd.id, next, Grant{})
	default:
		panic(fmt.Sprintf("central: unknown message %T", msg))
	}
}

// OnCSDone implements dme.Node.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.inFlight = false
	ctx.Send(nd.id, nd.coord, Release{})
	nd.maybeRequest(ctx)
}
