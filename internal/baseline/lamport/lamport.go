// Package lamport implements Lamport's timestamp-ordered distributed
// mutual exclusion algorithm (CACM 1978 / JACM 1986): every node keeps a
// replica of the request queue ordered by Lamport timestamps; a node
// enters the critical section when its own request heads its local queue
// and it has received a later-stamped message from every other node. It
// costs 3(N−1) messages per critical section and anchors the expensive
// end of the comparison experiments.
package lamport

import (
	"fmt"
	"sort"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindRequest = "REQUEST"
	KindAck     = "ACK"
	KindRelease = "RELEASE"
)

type Stamp struct {
	TS   uint64
	Node int
}

// less orders stamps by (timestamp, node id).
func (s Stamp) less(o Stamp) bool {
	return s.TS < o.TS || (s.TS == o.TS && s.Node < o.Node)
}

type Request struct{ S Stamp }

func (Request) Kind() string { return KindRequest }

type Ack struct{ TS uint64 }

func (Ack) Kind() string { return KindAck }

type Release struct {
	S  Stamp
	TS uint64 // sender's clock at release time, for the lastSeen check
}

func (Release) Kind() string { return KindRelease }

// Algorithm builds a Lamport-queue instance.
type Algorithm struct{}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "lamport" }

// Build implements dme.Algorithm.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodes[i] = &node{
			id:       i,
			n:        cfg.N,
			lastSeen: make([]uint64, cfg.N),
		}
	}
	return nodes, nil
}

type node struct {
	id, n int

	clock    uint64
	queue    []Stamp  // local replica of the request queue, kept sorted
	lastSeen []uint64 // highest timestamp received from each node

	requesting bool
	executing  bool
	myStamp    Stamp
	pending    int
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node.
func (nd *node) Init(dme.Context) {}

func (nd *node) tick(received uint64) {
	if received > nd.clock {
		nd.clock = received
	}
	nd.clock++
}

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	nd.maybeStart(ctx)
}

func (nd *node) maybeStart(ctx dme.Context) {
	if nd.requesting || nd.executing || nd.pending == 0 {
		return
	}
	nd.requesting = true
	nd.clock++
	nd.myStamp = Stamp{TS: nd.clock, Node: nd.id}
	nd.insert(nd.myStamp)
	ctx.Broadcast(nd.id, Request{S: nd.myStamp})
	nd.maybeEnter(ctx)
}

func (nd *node) insert(s Stamp) {
	i := sort.Search(len(nd.queue), func(i int) bool { return s.less(nd.queue[i]) })
	nd.queue = append(nd.queue, Stamp{})
	copy(nd.queue[i+1:], nd.queue[i:])
	nd.queue[i] = s
}

func (nd *node) remove(s Stamp) {
	for i, x := range nd.queue {
		if x == s {
			nd.queue = append(nd.queue[:i], nd.queue[i+1:]...)
			return
		}
	}
}

// maybeEnter applies Lamport's entry condition: own request at the head
// of the queue and a message with a later timestamp seen from every node.
func (nd *node) maybeEnter(ctx dme.Context) {
	if !nd.requesting || nd.executing {
		return
	}
	if len(nd.queue) == 0 || nd.queue[0] != nd.myStamp {
		return
	}
	for j := 0; j < nd.n; j++ {
		if j == nd.id {
			continue
		}
		if nd.lastSeen[j] <= nd.myStamp.TS {
			return
		}
	}
	nd.executing = true
	ctx.EnterCS(nd.id)
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch m := msg.(type) {
	case Request:
		nd.tick(m.S.TS)
		nd.insert(m.S)
		if m.S.TS >= nd.lastSeen[from] {
			nd.lastSeen[from] = m.S.TS
		}
		ctx.Send(nd.id, from, Ack{TS: nd.clock})
		nd.maybeEnter(ctx)
	case Ack:
		nd.tick(m.TS)
		if m.TS > nd.lastSeen[from] {
			nd.lastSeen[from] = m.TS
		}
		nd.maybeEnter(ctx)
	case Release:
		nd.tick(m.TS)
		nd.remove(m.S)
		if m.TS > nd.lastSeen[from] {
			nd.lastSeen[from] = m.TS
		}
		nd.maybeEnter(ctx)
	default:
		panic(fmt.Sprintf("lamport: unknown message %T", msg))
	}
}

// OnCSDone implements dme.Node.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.requesting = false
	nd.executing = false
	nd.remove(nd.myStamp)
	nd.clock++
	ctx.Broadcast(nd.id, Release{S: nd.myStamp, TS: nd.clock})
	nd.maybeStart(ctx)
}
