package lamport

import "tokenarbiter/internal/binenc"

// Binary wire layouts for internal/wire's binary codec. Field order is
// wire protocol — keep AppendWire and UnmarshalWire in lockstep.

func appendStamp(b []byte, s Stamp) []byte {
	b = binenc.AppendUvarint(b, s.TS)
	return binenc.AppendInt(b, s.Node)
}

func readStamp(r *binenc.Reader) Stamp {
	return Stamp{TS: r.Uvarint(), Node: r.Int()}
}

// AppendWire implements wire.WireAppender.
func (m Request) AppendWire(b []byte) ([]byte, error) {
	return appendStamp(b, m.S), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Request) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.S = readStamp(&r)
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (m Ack) AppendWire(b []byte) ([]byte, error) {
	return binenc.AppendUvarint(b, m.TS), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Ack) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.TS = r.Uvarint()
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (m Release) AppendWire(b []byte) ([]byte, error) {
	b = appendStamp(b, m.S)
	return binenc.AppendUvarint(b, m.TS), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Release) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.S = readStamp(&r)
	m.TS = r.Uvarint()
	return r.Close()
}
