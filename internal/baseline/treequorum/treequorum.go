// Package treequorum implements the Agrawal–El Abbadi tree-quorum mutual
// exclusion algorithm (ACM TOCS 1991) — reference [1] of the paper. Nodes
// are arranged in a logical complete binary tree; a quorum is any
// root-to-leaf path, and when a member is unavailable it is substituted
// by root-to-leaf paths of both of its subtrees, degrading gracefully
// from log₂N+1 members (failure-free) toward a majority under failures.
//
// Locks are acquired sequentially in ascending node-id order (the tree's
// BFS order), which makes acquisition deadlock-free without Maekawa-style
// INQUIRE traffic: every pair of quorums intersects, and all requesters
// acquire their intersection points in the same order. The failure-free
// message cost is 3·(|path|−self) ≈ 3·log₂N per critical section.
package treequorum

import (
	"fmt"
	"sort"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindRequest = "REQUEST"
	KindGrant   = "GRANT"
	KindRelease = "RELEASE"
)

type Request struct{}

func (Request) Kind() string { return KindRequest }

type Grant struct{}

func (Grant) Kind() string { return KindGrant }

type Release struct{}

func (Release) Kind() string { return KindRelease }

// Algorithm builds a tree-quorum instance over the complete binary tree
// rooted at node 0 (children of i are 2i+1 and 2i+2).
type Algorithm struct {
	// Timeout, when positive, bounds the wait for any single member's
	// GRANT; on expiry the member is presumed failed and substituted by
	// its subtree paths (the algorithm's fault-tolerance mechanism). 0
	// disables substitution: requesters wait indefinitely, which is
	// correct on reliable networks and what the cost experiments use.
	Timeout float64
}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "tree-quorum" }

// Build implements dme.Algorithm.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodes[i] = &node{id: i, n: cfg.N, timeout: a.Timeout, granted: make(map[int]bool)}
	}
	return nodes, nil
}

// Path returns the root-to-leaf path used as node id's default quorum:
// it descends from the root to id, then continues to id's leftmost leaf,
// so different requesters exercise different branches.
func Path(n, id int) []int {
	var up []int
	for i := id; i > 0; i = (i - 1) / 2 {
		up = append(up, i)
	}
	path := []int{0}
	for i := len(up) - 1; i >= 0; i-- {
		path = append(path, up[i])
	}
	for cur := id; ; {
		left := 2*cur + 1
		if left >= n {
			break
		}
		path = append(path, left)
		cur = left
	}
	return path
}

// SubtreePaths returns the substitute quorum members for a failed node:
// the leftmost root-to-leaf path of each of its subtrees. ok is false
// when the node is a leaf (no substitution exists down this branch).
func SubtreePaths(n, failed int) (subs []int, ok bool) {
	left, right := 2*failed+1, 2*failed+2
	if left >= n {
		return nil, false
	}
	appendPath := func(root int) {
		for cur := root; cur < n; cur = 2*cur + 1 {
			subs = append(subs, cur)
		}
	}
	appendPath(left)
	if right < n {
		appendPath(right)
	}
	return subs, true
}

type node struct {
	id, n   int
	timeout float64

	// Lock-manager state: one exclusive lock, FIFO waiters.
	lockedBy int // -1 when free
	queue    []int
	initDone bool

	// Requester state.
	requesting bool
	executing  bool
	plan       []int        // members still to lock, ascending ids
	granted    map[int]bool // members whose grant we hold
	waitingOn  int          // member whose grant we await; -1 when idle
	waitTimer  dme.Timer
	pending    int
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node.
func (nd *node) Init(dme.Context) {
	nd.lockedBy = -1
	nd.waitingOn = -1
}

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	nd.maybeStart(ctx)
}

func (nd *node) maybeStart(ctx dme.Context) {
	if nd.requesting || nd.executing || nd.pending == 0 {
		return
	}
	nd.requesting = true
	nd.plan = append([]int(nil), Path(nd.n, nd.id)...)
	sort.Ints(nd.plan)
	for k := range nd.granted {
		delete(nd.granted, k)
	}
	nd.waitingOn = -1
	nd.advance(ctx)
}

// advance requests the next unlocked plan member, in ascending order.
func (nd *node) advance(ctx dme.Context) {
	for len(nd.plan) > 0 {
		next := nd.plan[0]
		nd.plan = nd.plan[1:]
		if nd.granted[next] {
			continue
		}
		nd.waitingOn = next
		ctx.Send(nd.id, next, Request{})
		if nd.timeout > 0 {
			member := next
			nd.waitTimer = ctx.After(nd.id, nd.timeout, func() {
				nd.onMemberTimeout(ctx, member)
			})
		}
		return
	}
	// Quorum complete.
	nd.waitingOn = -1
	nd.executing = true
	ctx.EnterCS(nd.id)
}

// onMemberTimeout presumes the member failed and substitutes its subtree
// paths (Agrawal–El Abbadi degradation).
func (nd *node) onMemberTimeout(ctx dme.Context, member int) {
	if !nd.requesting || nd.executing || nd.waitingOn != member {
		return
	}
	subs, ok := SubtreePaths(nd.n, member)
	if !ok {
		// A failed leaf: re-request the same member and keep waiting —
		// with the leaf dead this branch cannot regain the quorum, but
		// retrying preserves correctness if the timeout was spurious.
		ctx.Send(nd.id, member, Request{})
		nd.waitTimer = ctx.After(nd.id, nd.timeout, func() {
			nd.onMemberTimeout(ctx, member)
		})
		return
	}
	merged := append(nd.plan, subs...)
	sort.Ints(merged)
	// Dedup; drop the failed member and anything already granted.
	nd.plan = nd.plan[:0]
	prev := -1
	for _, m := range merged {
		if m == prev || m == member || nd.granted[m] {
			continue
		}
		prev = m
		nd.plan = append(nd.plan, m)
	}
	nd.waitingOn = -1
	nd.advance(ctx)
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch msg.(type) {
	case Request:
		if nd.lockedBy == -1 {
			nd.lockedBy = from
			ctx.Send(nd.id, from, Grant{})
		} else if !contains(nd.queue, from) {
			// Queued even when from == lockedBy: on a reordering network
			// the holder's next REQUEST can overtake its own RELEASE;
			// dropping it would leave the requester waiting for a grant
			// that never comes.
			nd.queue = append(nd.queue, from)
		}
	case Grant:
		nd.onGrant(ctx, from)
	case Release:
		if nd.lockedBy != from {
			return // stale release (e.g. from an abandoned grant)
		}
		nd.grantNext(ctx)
	default:
		panic(fmt.Sprintf("treequorum: unknown message %T", msg))
	}
}

func (nd *node) grantNext(ctx dme.Context) {
	if len(nd.queue) == 0 {
		nd.lockedBy = -1
		return
	}
	nd.lockedBy = nd.queue[0]
	nd.queue = nd.queue[1:]
	ctx.Send(nd.id, nd.lockedBy, Grant{})
}

func (nd *node) onGrant(ctx dme.Context, from int) {
	if !nd.requesting || nd.granted[from] {
		// A grant we no longer want (substituted member answering late,
		// or we already released): give it straight back.
		if !nd.requesting {
			ctx.Send(nd.id, from, Release{})
		}
		return
	}
	if nd.waitingOn == from {
		nd.cancelWait(ctx)
		nd.granted[from] = true
		nd.advance(ctx)
		return
	}
	// A late grant from a member we substituted away: keep it — holding
	// extra locks never violates safety — and release it with the rest.
	nd.granted[from] = true
}

func (nd *node) cancelWait(ctx dme.Context) {
	if nd.waitTimer.Armed() {
		ctx.Cancel(nd.waitTimer)
		nd.waitTimer = dme.Timer{}
	}
	nd.waitingOn = -1
}

// OnCSDone implements dme.Node.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.requesting = false
	nd.executing = false
	nd.cancelWait(ctx)
	members := make([]int, 0, len(nd.granted))
	for m := range nd.granted {
		members = append(members, m)
	}
	sort.Ints(members)
	for _, m := range members {
		delete(nd.granted, m)
		ctx.Send(nd.id, m, Release{})
	}
	nd.maybeStart(ctx)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
