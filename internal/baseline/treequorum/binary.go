package treequorum

import "tokenarbiter/internal/binenc"

// Binary wire layouts for internal/wire's binary codec. All three
// messages are empty: the payload is zero bytes, and a decoder rejects
// trailing garbage.

// AppendWire implements wire.WireAppender.
func (Request) AppendWire(b []byte) ([]byte, error) { return b, nil }

// UnmarshalWire implements wire.WireUnmarshaler.
func (*Request) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (Grant) AppendWire(b []byte) ([]byte, error) { return b, nil }

// UnmarshalWire implements wire.WireUnmarshaler.
func (*Grant) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (Release) AppendWire(b []byte) ([]byte, error) { return b, nil }

// UnmarshalWire implements wire.WireUnmarshaler.
func (*Release) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	return r.Close()
}
