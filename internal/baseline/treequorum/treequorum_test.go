package treequorum

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/sim"
	"tokenarbiter/internal/workload"
)

func cfg(n int, lambda float64, total, seed uint64) dme.Config {
	return dme.Config{
		N:              n,
		Seed:           seed,
		Delay:          sim.ConstantDelay{D: 0.1},
		Texec:          0.1,
		TotalRequests:  total,
		WarmupRequests: total / 10,
		MaxVirtualTime: 1e8,
		Gen: func(node int) dme.GeneratorFunc {
			return workload.Stream(workload.Poisson{Lambda: lambda}, seed, node)
		},
	}
}

func TestPathProperties(t *testing.T) {
	// Every path starts at the root and is strictly ascending (the
	// global lock order); consecutive elements are parent/child.
	for n := 1; n <= 40; n++ {
		for id := 0; id < n; id++ {
			p := Path(n, id)
			if p[0] != 0 {
				t.Fatalf("Path(%d,%d) = %v does not start at the root", n, id, p)
			}
			if !contains(p, id) {
				t.Fatalf("Path(%d,%d) = %v does not pass through the requester", n, id, p)
			}
			for i := 1; i < len(p); i++ {
				if p[i] <= p[i-1] {
					t.Fatalf("Path(%d,%d) = %v not ascending", n, id, p)
				}
				if (p[i]-1)/2 != p[i-1] {
					t.Fatalf("Path(%d,%d) = %v has non-edge %d→%d", n, id, p, p[i-1], p[i])
				}
			}
			// Ends at a leaf.
			last := p[len(p)-1]
			if 2*last+1 < n {
				t.Fatalf("Path(%d,%d) = %v does not end at a leaf", n, id, p)
			}
		}
	}
}

func TestPathsPairwiseIntersect(t *testing.T) {
	// The quorum property: any two root-leaf paths share at least the
	// root; with substitution, any path and any substituted quorum share
	// a subtree root. Here: plain pairwise check.
	const n = 15
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			pa, pb := Path(n, a), Path(n, b)
			found := false
			for _, x := range pa {
				if contains(pb, x) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("paths %v and %v do not intersect", pa, pb)
			}
		}
	}
}

func TestSubtreePaths(t *testing.T) {
	// Root of a 7-node tree: substitutes to the leftmost paths of both
	// subtrees.
	subs, ok := SubtreePaths(7, 0)
	if !ok {
		t.Fatal("root substitution failed")
	}
	want := []int{1, 3, 2, 5}
	if !reflect.DeepEqual(subs, want) {
		t.Fatalf("SubtreePaths(7,0) = %v, want %v", subs, want)
	}
	// A leaf has no substitution.
	if _, ok := SubtreePaths(7, 4); ok {
		t.Fatal("leaf substitution should fail")
	}
}

func TestCompletesAcrossLoads(t *testing.T) {
	for _, lambda := range []float64{0.02, 0.2, 0.45} {
		m, err := dme.Run(&Algorithm{}, cfg(15, lambda, 5000, 1))
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		t.Logf("λ=%v: %.3f msgs/cs", lambda, m.MessagesPerCS())
		if m.CSCompleted == 0 {
			t.Error("nothing completed")
		}
	}
}

func TestFailureFreeCostIsLogarithmic(t *testing.T) {
	// Failure-free cost ≈ 3·(path length − locally-held members). For
	// N=15 (4 levels) expect well under Maekawa's ~3·2√N and far under
	// Ricart-Agrawala's 2(N−1)=28.
	m, err := dme.Run(&Algorithm{}, cfg(15, 0.05, 5000, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := m.MessagesPerCS()
	if got > 3*(math.Log2(16)+1) {
		t.Errorf("light-load cost %.2f msgs/cs, want ≈3·log₂N", got)
	}
}

func TestInternalNodeCrashSubstitution(t *testing.T) {
	// Crash node 1 (an internal tree node) mid-run with substitution
	// enabled: requesters whose path crosses node 1 must degrade to its
	// subtree paths and keep completing critical sections.
	c := cfg(7, 0.2, 2000, 3)
	c.WarmupRequests = 0
	r, err := dme.NewRunner(&Algorithm{Timeout: 5}, c)
	if err != nil {
		t.Fatal(err)
	}
	r.ScheduleAt(20, func() { r.Crash(1) })
	m, err := r.Run()
	if err != nil {
		t.Fatalf("run with crashed internal node: %v", err)
	}
	if m.CSCompleted == 0 {
		t.Fatal("nothing completed")
	}
	t.Logf("with node 1 crashed: %s", m)
}

func TestSafetyProperty(t *testing.T) {
	prop := func(seed uint64, loadSel uint8) bool {
		lambda := []float64{0.1, 0.3, 0.6}[int(loadSel)%3]
		c := cfg(7, lambda, 1000, seed%1000+1)
		c.MaxVirtualTime = 1e6
		_, err := dme.Run(&Algorithm{}, c)
		if err != nil {
			t.Logf("seed=%d λ=%v: %v", seed%1000+1, lambda, err)
		}
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJitteredDelays(t *testing.T) {
	c := cfg(15, 0.3, 4000, 5)
	c.Delay = sim.UniformDelay{Min: 0.02, Max: 0.25}
	if _, err := dme.Run(&Algorithm{}, c); err != nil {
		t.Fatalf("tree quorum under jitter: %v", err)
	}
}
