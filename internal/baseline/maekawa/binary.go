package maekawa

import "tokenarbiter/internal/binenc"

// Binary wire layouts for internal/wire's binary codec. Field order is
// wire protocol — keep AppendWire and UnmarshalWire in lockstep.

func appendStamp(b []byte, s Stamp) []byte {
	b = binenc.AppendUvarint(b, s.TS)
	return binenc.AppendInt(b, s.Node)
}

func readStamp(r *binenc.Reader) Stamp {
	return Stamp{TS: r.Uvarint(), Node: r.Int()}
}

// AppendWire implements wire.WireAppender.
func (m Request) AppendWire(b []byte) ([]byte, error) {
	return appendStamp(b, m.S), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Request) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.S = readStamp(&r)
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (Grant) AppendWire(b []byte) ([]byte, error) { return b, nil }

// UnmarshalWire implements wire.WireUnmarshaler.
func (*Grant) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (Release) AppendWire(b []byte) ([]byte, error) { return b, nil }

// UnmarshalWire implements wire.WireUnmarshaler.
func (*Release) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (m Inquire) AppendWire(b []byte) ([]byte, error) {
	return appendStamp(b, m.S), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Inquire) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.S = readStamp(&r)
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (Relinquish) AppendWire(b []byte) ([]byte, error) { return b, nil }

// UnmarshalWire implements wire.WireUnmarshaler.
func (*Relinquish) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (Failed) AppendWire(b []byte) ([]byte, error) { return b, nil }

// UnmarshalWire implements wire.WireUnmarshaler.
func (*Failed) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	return r.Close()
}
