package maekawa

import (
	"testing"
	"testing/quick"

	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/sim"
	"tokenarbiter/internal/workload"
)

func cfg(n int, lambda float64, total, seed uint64) dme.Config {
	return dme.Config{
		N:              n,
		Seed:           seed,
		Delay:          sim.ConstantDelay{D: 0.1},
		Texec:          0.1,
		TotalRequests:  total,
		WarmupRequests: total / 10,
		MaxVirtualTime: 1e8,
		Gen: func(node int) dme.GeneratorFunc {
			return workload.Stream(workload.Poisson{Lambda: lambda}, seed, node)
		},
	}
}

func TestGridQuorumsIntersect(t *testing.T) {
	for n := 1; n <= 40; n++ {
		if err := Validate(n, GridQuorums(n)); err != nil {
			t.Errorf("N=%d: %v", n, err)
		}
	}
}

func TestGridQuorumSize(t *testing.T) {
	// Perfect square: |quorum| = 2√N − 1.
	q := GridQuorums(16)
	for i, s := range q {
		if len(s) != 7 {
			t.Errorf("N=16 quorum %d has %d members, want 7", i, len(s))
		}
	}
}

func TestValidateRejectsBadQuorums(t *testing.T) {
	// Missing owner.
	if err := Validate(2, [][]int{{1}, {1}}); err == nil {
		t.Error("quorum without owner accepted")
	}
	// Non-intersecting.
	if err := Validate(2, [][]int{{0}, {1}}); err == nil {
		t.Error("disjoint quorums accepted")
	}
	// Invalid member.
	if err := Validate(2, [][]int{{0, 5}, {0, 1}}); err == nil {
		t.Error("out-of-range member accepted")
	}
	// Wrong count.
	if err := Validate(3, [][]int{{0}, {1}}); err == nil {
		t.Error("wrong quorum count accepted")
	}
}

func TestMaekawaCompletesAcrossLoads(t *testing.T) {
	for _, lambda := range []float64{0.02, 0.2, 0.45} {
		m, err := dme.Run(&Algorithm{}, cfg(9, lambda, 4000, 3))
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		t.Logf("λ=%v: %.3f msgs/cs", lambda, m.MessagesPerCS())
		if m.CSCompleted == 0 {
			t.Error("nothing completed")
		}
	}
}

func TestMaekawaUncontendedCost(t *testing.T) {
	// One requester, N=16, quorum size 7 (incl. self): REQUEST+GRANT+
	// RELEASE to the 6 remote members = 18 messages per CS; INQUIRE
	// traffic never appears without contention.
	c := cfg(16, 0, 2000, 5)
	c.Gen = func(node int) dme.GeneratorFunc {
		if node != 5 {
			return nil
		}
		return workload.Stream(workload.Poisson{Lambda: 1}, 5, node)
	}
	m, err := dme.Run(&Algorithm{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MessagesPerCS(); got < 17.9 || got > 18.1 {
		t.Errorf("uncontended msgs/cs = %.3f, want 18 = 3·(|Q|−1)", got)
	}
	if m.MsgByKind[KindInquire] != 0 || m.MsgByKind[KindRelinquish] != 0 {
		t.Error("deadlock-avoidance traffic without contention")
	}
}

func TestMaekawaContentionUsesInquire(t *testing.T) {
	m, err := dme.Run(&Algorithm{}, cfg(9, 0.5, 8000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if m.MsgByKind[KindInquire] == 0 {
		t.Error("heavy contention never triggered INQUIRE")
	}
	if m.MsgByKind[KindFailed] == 0 {
		t.Error("heavy contention never triggered FAILED")
	}
	t.Logf("contended: %s", m)
}

func TestMaekawaNoStarvation(t *testing.T) {
	m, err := dme.Run(&Algorithm{}, cfg(9, 0.4, 9000, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.PerNodeCS {
		if c == 0 {
			t.Errorf("node %d starved", i)
		}
	}
}

// TestMaekawaSafetyProperty hammers the deadlock-avoidance machinery
// across seeds; the harness detects any quorum-intersection violation as
// a concurrent CS entry.
func TestMaekawaSafetyProperty(t *testing.T) {
	prop := func(seed uint64, loadSel uint8) bool {
		lambda := []float64{0.1, 0.3, 0.6}[int(loadSel)%3]
		c := cfg(6, lambda, 1000, seed%1000+1)
		c.MaxVirtualTime = 1e6
		_, err := dme.Run(&Algorithm{}, c)
		if err != nil {
			t.Logf("seed=%d λ=%v: %v", seed%1000+1, lambda, err)
		}
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaekawaJitteredDelays(t *testing.T) {
	c := cfg(9, 0.3, 4000, 11)
	c.Delay = sim.UniformDelay{Min: 0.02, Max: 0.25}
	if _, err := dme.Run(&Algorithm{}, c); err != nil {
		t.Fatalf("maekawa under jitter: %v", err)
	}
}
