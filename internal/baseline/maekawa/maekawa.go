// Package maekawa implements Maekawa's quorum-based mutual exclusion
// algorithm (ACM TOCS 1985), the √N-message algorithm the paper discusses
// in its fairness comparison (§5.1). A node acquires a GRANT from every
// member of its quorum before entering the critical section; any two
// quorums intersect, so two nodes can never hold all their grants at
// once. Deadlock is avoided with the INQUIRE / RELINQUISH / FAILED
// protocol driven by Lamport-timestamp priorities: a granted but not yet
// executing node yields its grant when an older request turns up.
//
// Quorums are grid quorums: nodes are laid out in a ⌈√N⌉-wide grid and a
// node's quorum is its row plus its column (padded cyclically for ragged
// grids). Grid quorums intersect pairwise and are ≈2√N in size — larger
// than Maekawa's finite-projective-plane optimum of ≈√N but constructible
// for every N; message costs scale accordingly (≈3·(2√N) per CS,
// uncontended).
package maekawa

import (
	"fmt"
	"math"
	"sort"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindRequest    = "REQUEST"
	KindGrant      = "GRANT"
	KindRelease    = "RELEASE"
	KindInquire    = "INQUIRE"
	KindRelinquish = "RELINQUISH"
	KindFailed     = "FAILED"
)

type Stamp struct {
	TS   uint64
	Node int
}

// older reports whether s has priority over o (smaller timestamp, node id
// breaking ties).
func (s Stamp) older(o Stamp) bool {
	return s.TS < o.TS || (s.TS == o.TS && s.Node < o.Node)
}

type Request struct{ S Stamp }

func (Request) Kind() string { return KindRequest }

type Grant struct{}

func (Grant) Kind() string { return KindGrant }

type Release struct{}

func (Release) Kind() string { return KindRelease }

type Inquire struct{ S Stamp }

func (Inquire) Kind() string { return KindInquire }

type Relinquish struct{}

func (Relinquish) Kind() string { return KindRelinquish }

type Failed struct{}

func (Failed) Kind() string { return KindFailed }

// GridQuorums builds the row+column quorum of each node in a ⌈√N⌉-wide
// grid; ragged last rows borrow column members cyclically so every
// quorum still intersects every other.
func GridQuorums(n int) [][]int {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	quorums := make([][]int, n)
	for i := 0; i < n; i++ {
		member := map[int]bool{}
		row := i / cols
		// Row part.
		for c := 0; c < cols; c++ {
			j := row*cols + c
			if j < n {
				member[j] = true
			}
		}
		// Column part (wrapping past ragged rows).
		col := i % cols
		for r := 0; r*cols+col < n+cols; r++ {
			j := r*cols + col
			if j < n {
				member[j] = true
			}
		}
		member[i] = true
		q := make([]int, 0, len(member))
		for j := range member {
			q = append(q, j)
		}
		sort.Ints(q)
		quorums[i] = q
	}
	return quorums
}

// Algorithm builds a Maekawa instance over grid quorums. Quorums may be
// overridden for testing (each must contain its owner, and all pairs must
// intersect — Validate checks this).
type Algorithm struct {
	Quorums [][]int
}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "maekawa" }

// Validate checks the quorum system's structural requirements.
func Validate(n int, quorums [][]int) error {
	if len(quorums) != n {
		return fmt.Errorf("maekawa: %d quorums for %d nodes", len(quorums), n)
	}
	sets := make([]map[int]bool, n)
	for i, q := range quorums {
		sets[i] = map[int]bool{}
		own := false
		for _, j := range q {
			if j < 0 || j >= n {
				return fmt.Errorf("maekawa: quorum %d contains invalid node %d", i, j)
			}
			sets[i][j] = true
			if j == i {
				own = true
			}
		}
		if !own {
			return fmt.Errorf("maekawa: quorum %d does not contain its owner", i)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ok := false
			for k := range sets[i] {
				if sets[j][k] {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("maekawa: quorums %d and %d do not intersect", i, j)
			}
		}
	}
	return nil
}

// Build implements dme.Algorithm.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	quorums := a.Quorums
	if quorums == nil {
		quorums = GridQuorums(cfg.N)
	}
	if err := Validate(cfg.N, quorums); err != nil {
		return nil, err
	}
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodes[i] = &node{
			id:         i,
			quorum:     quorums[i],
			grants:     make(map[int]bool, len(quorums[i])),
			inquiredBy: make(map[int]bool, len(quorums[i])),
		}
	}
	return nodes, nil
}

type node struct {
	id     int
	quorum []int

	clock uint64

	// Requester side.
	requesting bool
	executing  bool
	myStamp    Stamp
	grants     map[int]bool
	nGrants    int
	pending    int
	// inquiredBy records members whose INQUIRE overtook their own GRANT
	// (non-FIFO networks); the grant is relinquished the moment it
	// arrives, otherwise the member would wait for a RELINQUISH that
	// never comes and the system would deadlock.
	inquiredBy map[int]bool

	// Lock-manager side (this node as a quorum member).
	cur      Stamp // granted request; zero Node==-1 marker via curSet
	curSet   bool
	inquired bool
	waiting  []Stamp // pending requests, kept priority-sorted
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node.
func (nd *node) Init(dme.Context) {}

func (nd *node) tick(ts uint64) {
	if ts > nd.clock {
		nd.clock = ts
	}
	nd.clock++
}

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	nd.maybeStart(ctx)
}

func (nd *node) maybeStart(ctx dme.Context) {
	if nd.requesting || nd.executing || nd.pending == 0 {
		return
	}
	nd.requesting = true
	nd.clock++
	nd.myStamp = Stamp{TS: nd.clock, Node: nd.id}
	nd.nGrants = 0
	for k := range nd.grants {
		delete(nd.grants, k)
	}
	for k := range nd.inquiredBy {
		delete(nd.inquiredBy, k)
	}
	for _, j := range nd.quorum {
		ctx.Send(nd.id, j, Request{S: nd.myStamp})
	}
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch m := msg.(type) {
	case Request:
		nd.tick(m.S.TS)
		nd.onRequest(ctx, m.S)
	case Grant:
		nd.onGrant(ctx, from)
	case Release:
		nd.onRelease(ctx)
	case Inquire:
		nd.onInquire(ctx, from, m)
	case Relinquish:
		nd.onRelinquish(ctx)
	case Failed:
		// Informational: an older request holds our quorum member; we
		// simply keep waiting, our queued request will be granted in
		// timestamp order.
	default:
		panic(fmt.Sprintf("maekawa: unknown message %T", msg))
	}
}

// onRequest is the lock-manager path.
func (nd *node) onRequest(ctx dme.Context, s Stamp) {
	if !nd.curSet {
		nd.cur = s
		nd.curSet = true
		nd.inquired = false
		ctx.Send(nd.id, s.Node, Grant{})
		return
	}
	nd.enqueue(s)
	if s.older(nd.cur) {
		// An older request wants the lock we granted: ask the holder to
		// give it back unless we already did.
		if !nd.inquired {
			nd.inquired = true
			ctx.Send(nd.id, nd.cur.Node, Inquire{S: nd.cur})
		}
	} else {
		ctx.Send(nd.id, s.Node, Failed{})
	}
}

func (nd *node) enqueue(s Stamp) {
	i := sort.Search(len(nd.waiting), func(i int) bool { return s.older(nd.waiting[i]) })
	nd.waiting = append(nd.waiting, Stamp{})
	copy(nd.waiting[i+1:], nd.waiting[i:])
	nd.waiting[i] = s
}

// grantNext hands the lock to the oldest waiting request, if any.
func (nd *node) grantNext(ctx dme.Context) {
	if len(nd.waiting) == 0 {
		nd.curSet = false
		nd.inquired = false
		return
	}
	nd.cur = nd.waiting[0]
	nd.waiting = nd.waiting[1:]
	nd.curSet = true
	nd.inquired = false
	ctx.Send(nd.id, nd.cur.Node, Grant{})
}

// onGrant is the requester path.
func (nd *node) onGrant(ctx dme.Context, from int) {
	if nd.executing || nd.grants[from] {
		return
	}
	if !nd.requesting {
		// A stale grant for a request we no longer hold: hand the lock
		// straight back so the member is not stranded.
		ctx.Send(nd.id, from, Release{})
		return
	}
	if nd.inquiredBy[from] {
		// The member's INQUIRE overtook this grant: yield immediately.
		delete(nd.inquiredBy, from)
		ctx.Send(nd.id, from, Relinquish{})
		return
	}
	nd.grants[from] = true
	nd.nGrants++
	if nd.nGrants == len(nd.quorum) {
		nd.executing = true
		ctx.EnterCS(nd.id)
	}
}

func (nd *node) onRelease(ctx dme.Context) {
	nd.grantNext(ctx)
}

// onInquire: a quorum member wants its grant back for an older request.
// Yield unless we are already executing (then the imminent RELEASE
// resolves it).
func (nd *node) onInquire(ctx dme.Context, from int, m Inquire) {
	if nd.executing || !nd.requesting {
		return
	}
	if m.S != nd.myStamp {
		// Stale inquire about a previous incarnation of our request.
		return
	}
	if nd.grants[from] {
		delete(nd.grants, from)
		nd.nGrants--
		ctx.Send(nd.id, from, Relinquish{})
		return
	}
	// The INQUIRE overtook the member's GRANT (non-FIFO delivery):
	// remember it and yield when the grant shows up.
	nd.inquiredBy[from] = true
}

// onRelinquish: the holder returned our grant; re-queue it and grant the
// oldest waiter (which is exactly the request that triggered INQUIRE).
func (nd *node) onRelinquish(ctx dme.Context) {
	if nd.curSet {
		nd.enqueue(nd.cur)
		nd.curSet = false
	}
	nd.grantNext(ctx)
}

// OnCSDone implements dme.Node.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.requesting = false
	nd.executing = false
	for _, j := range nd.quorum {
		ctx.Send(nd.id, j, Release{})
	}
	nd.maybeStart(ctx)
}
