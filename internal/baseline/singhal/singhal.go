// Package singhal implements Singhal's dynamic information-structure
// mutual exclusion algorithm (IEEE TPDS 1992), the "dynamic" comparison
// curve of the paper's Figure 6.
//
// Each site i maintains a request set R_i (the sites it must ask) and an
// inform set I_i (the sites it must answer when it leaves the critical
// section). The sets are initialized in the staircase pattern
// R_i = {0..i}, I_i = {i}, which guarantees that for any pair of sites at
// least one asks the other. The sets then evolve dynamically:
//
//   - A requester sends REQUEST(ts, i) to every member of R_i \ {i} and
//     enters the CS once all of them have replied.
//   - A site in state N (neither requesting nor executing) that receives
//     a REQUEST replies immediately and adds the requester to its R set
//     (it must ask that site next time, because that site is about to
//     become better informed).
//   - A site in state R compares Lamport priorities. If the incoming
//     request wins, the site replies AND, if it had not already asked
//     that requester, adds it to R and sends it a (re-)REQUEST so its own
//     pending request is still seen. If its own request wins, it defers
//     the requester by adding it to I.
//   - A site in state E (executing) defers the requester into I.
//   - On exiting the CS the site replies to every deferred site in I and
//     resets R := {i} ∪ I, I := {i}: the deferred sites are exactly the
//     ones that may now be ahead of it.
//
// At light load the most recent executor has R = {i} and re-enters for
// free, and an average requester contacts about half the sites (the
// staircase average), which is why the dynamic curve starts near N/2 in
// Figure 6; under contention the sets grow toward full pairwise exchange
// and the cost approaches that of Ricart-Agrawala.
package singhal

import (
	"fmt"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindRequest = "REQUEST"
	KindReply   = "REPLY"
)

type Request struct {
	TS   uint64
	Node int
}

func (Request) Kind() string { return KindRequest }

type Reply struct{}

func (Reply) Kind() string { return KindReply }

// Algorithm builds a Singhal dynamic-information-structure instance.
type Algorithm struct{}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "singhal-dynamic" }

// Build implements dme.Algorithm.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nd := &node{
			id:      i,
			n:       cfg.N,
			reqSet:  make([]bool, cfg.N),
			infSet:  make([]bool, cfg.N),
			waiting: make([]bool, cfg.N),
		}
		for j := 0; j <= i; j++ {
			nd.reqSet[j] = true // staircase: R_i = {0..i}
		}
		nd.infSet[i] = true
		nodes[i] = nd
	}
	return nodes, nil
}

// state is the site's phase in Singhal's automaton.
type state int

const (
	stateN state = iota // neither requesting nor executing
	stateR              // requesting
	stateE              // executing
)

type node struct {
	id, n int

	st     state
	clock  uint64
	myTS   uint64
	reqSet []bool // R_i
	infSet []bool // I_i

	waiting  []bool // sites whose REPLY our current request still needs
	nwaiting int
	pending  int
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node.
func (nd *node) Init(dme.Context) {}

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	nd.maybeStart(ctx)
}

func (nd *node) maybeStart(ctx dme.Context) {
	if nd.st != stateN || nd.pending == 0 {
		return
	}
	nd.st = stateR
	nd.clock++
	nd.myTS = nd.clock
	nd.nwaiting = 0
	for j := 0; j < nd.n; j++ {
		nd.waiting[j] = false
	}
	for j := 0; j < nd.n; j++ {
		if j == nd.id || !nd.reqSet[j] {
			continue
		}
		nd.waiting[j] = true
		nd.nwaiting++
		ctx.Send(nd.id, j, Request{TS: nd.myTS, Node: nd.id})
	}
	if nd.nwaiting == 0 {
		nd.enter(ctx)
	}
}

func (nd *node) enter(ctx dme.Context) {
	nd.st = stateE
	ctx.EnterCS(nd.id)
}

// wins reports whether the incoming request (ts, j) beats our own pending
// request under Lamport priority.
func (nd *node) wins(ts uint64, j int) bool {
	return ts < nd.myTS || (ts == nd.myTS && j < nd.id)
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch m := msg.(type) {
	case Request:
		if m.TS > nd.clock {
			nd.clock = m.TS
		}
		nd.clock++
		switch nd.st {
		case stateN:
			nd.reqSet[m.Node] = true
			ctx.Send(nd.id, from, Reply{})
		case stateE:
			nd.infSet[m.Node] = true
		case stateR:
			if nd.wins(m.TS, m.Node) {
				ctx.Send(nd.id, from, Reply{})
				if !nd.reqSet[m.Node] {
					// The dynamic step: we just learned about a site
					// ahead of us that we had not asked; ask it now so
					// our pending request is ordered behind its exit.
					nd.reqSet[m.Node] = true
					if !nd.waiting[m.Node] {
						nd.waiting[m.Node] = true
						nd.nwaiting++
					}
					ctx.Send(nd.id, from, Request{TS: nd.myTS, Node: nd.id})
				}
			} else {
				nd.infSet[m.Node] = true
			}
		}
	case Reply:
		if nd.st != stateR || !nd.waiting[from] {
			return
		}
		nd.waiting[from] = false
		nd.nwaiting--
		if nd.nwaiting == 0 {
			nd.enter(ctx)
		}
	default:
		panic(fmt.Sprintf("singhal: unknown message %T", msg))
	}
}

// OnCSDone implements dme.Node: answer the deferred sites and reset the
// information structure — R shrinks to the deferred set, which is exactly
// the set of sites that may now run ahead of us.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.st = stateN
	for j := 0; j < nd.n; j++ {
		if j != nd.id && nd.infSet[j] {
			ctx.Send(nd.id, j, Reply{})
		}
	}
	for j := 0; j < nd.n; j++ {
		nd.reqSet[j] = nd.infSet[j]
		nd.infSet[j] = false
	}
	nd.reqSet[nd.id] = true
	nd.infSet[nd.id] = true
	nd.maybeStart(ctx)
}
