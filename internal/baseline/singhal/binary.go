package singhal

import "tokenarbiter/internal/binenc"

// Binary wire layouts for internal/wire's binary codec.

// AppendWire implements wire.WireAppender.
func (m Request) AppendWire(b []byte) ([]byte, error) {
	b = binenc.AppendUvarint(b, m.TS)
	return binenc.AppendInt(b, m.Node), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Request) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.TS = r.Uvarint()
	m.Node = r.Int()
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (Reply) AppendWire(b []byte) ([]byte, error) { return b, nil }

// UnmarshalWire implements wire.WireUnmarshaler.
func (*Reply) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	return r.Close()
}
