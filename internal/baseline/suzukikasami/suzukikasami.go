// Package suzukikasami implements the Suzuki-Kasami broadcast token
// algorithm (ACM TOCS 1985): a requester broadcasts REQUEST(j, n); the
// token carries the array LN of last-granted request numbers and a FIFO
// queue of privileged nodes. It costs N messages per remote critical
// section (N−1 request broadcasts plus one token transfer) and zero when
// the requester already holds the token. The paper positions its arbiter
// algorithm as a "reverse" Suzuki-Kasami, making this the closest
// token-based comparator.
package suzukikasami

import (
	"fmt"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindRequest = "REQUEST"
	KindToken   = "TOKEN"
)

type Request struct {
	Node int
	N    uint64 // request number
}

func (Request) Kind() string { return KindRequest }

type Token struct {
	LN    []uint64 // LN[j]: request number of node j's last granted CS
	Queue []int
}

func (Token) Kind() string { return KindToken }

// SizeUnits implements dme.Sized: the Suzuki-Kasami token always carries
// the full N-entry LN table plus its queue — the volume cost hidden
// behind the algorithm's low message count.
func (t Token) SizeUnits() int { return 1 + len(t.LN) + len(t.Queue) }

func (t Token) clone() Token {
	out := Token{LN: make([]uint64, len(t.LN)), Queue: make([]int, len(t.Queue))}
	copy(out.LN, t.LN)
	copy(out.Queue, t.Queue)
	return out
}

// Algorithm builds a Suzuki-Kasami instance; node 0 initially holds the
// token.
type Algorithm struct{}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "suzuki-kasami" }

// Build implements dme.Algorithm.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodes[i] = &node{id: i, n: cfg.N, rn: make([]uint64, cfg.N)}
	}
	return nodes, nil
}

type node struct {
	id, n int

	rn         []uint64 // RN[j]: highest request number seen from node j
	hasToken   bool
	tok        Token
	requesting bool // waiting for the token for our current request
	executing  bool
	pending    int
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node: node 0 starts with the token.
func (nd *node) Init(dme.Context) {
	if nd.id == 0 {
		nd.hasToken = true
		nd.tok = Token{LN: make([]uint64, nd.n)}
	}
}

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	nd.maybeStart(ctx)
}

func (nd *node) maybeStart(ctx dme.Context) {
	if nd.requesting || nd.executing || nd.pending == 0 {
		return
	}
	nd.requesting = true
	nd.rn[nd.id]++
	if nd.hasToken {
		nd.enter(ctx)
		return
	}
	ctx.Broadcast(nd.id, Request{Node: nd.id, N: nd.rn[nd.id]})
}

func (nd *node) enter(ctx dme.Context) {
	nd.executing = true
	ctx.EnterCS(nd.id)
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch m := msg.(type) {
	case Request:
		if m.N > nd.rn[m.Node] {
			nd.rn[m.Node] = m.N
		}
		// An idle token holder passes the token to an outstanding
		// requester immediately.
		if nd.hasToken && !nd.executing && !nd.requesting &&
			nd.rn[m.Node] == nd.tok.LN[m.Node]+1 {
			nd.hasToken = false
			t := nd.tok.clone()
			ctx.Send(nd.id, m.Node, t)
		}
	case Token:
		nd.hasToken = true
		nd.tok = m.clone()
		if nd.requesting && !nd.executing {
			nd.enter(ctx)
		} else if !nd.executing && len(nd.tok.Queue) > 0 {
			// Defensive: we are not requesting but the token queue has
			// waiters; keep it moving rather than parking it here.
			next := nd.tok.Queue[0]
			nd.tok.Queue = nd.tok.Queue[1:]
			if next != nd.id {
				nd.hasToken = false
				ctx.Send(nd.id, next, nd.tok.clone())
			}
		}
	default:
		panic(fmt.Sprintf("suzukikasami: unknown message %T", msg))
	}
}

// OnCSDone implements dme.Node: update LN, refresh the token queue with
// every node whose request is outstanding, and pass the token to the head.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.requesting = false
	nd.executing = false

	nd.tok.LN[nd.id] = nd.rn[nd.id]
	inQueue := make(map[int]bool, len(nd.tok.Queue))
	for _, j := range nd.tok.Queue {
		inQueue[j] = true
	}
	for off := 1; off <= nd.n; off++ {
		j := (nd.id + off) % nd.n
		if !inQueue[j] && nd.rn[j] == nd.tok.LN[j]+1 {
			nd.tok.Queue = append(nd.tok.Queue, j)
		}
	}
	if len(nd.tok.Queue) > 0 {
		next := nd.tok.Queue[0]
		nd.tok.Queue = nd.tok.Queue[1:]
		if next == nd.id {
			// Our own next request is first in line; serve it locally.
			nd.maybeStart(ctx)
			return
		}
		nd.hasToken = false
		ctx.Send(nd.id, next, nd.tok.clone())
	}
	nd.maybeStart(ctx)
}
