package suzukikasami

import "tokenarbiter/internal/binenc"

// Binary wire layouts for internal/wire's binary codec. The token's LN
// table and queue decode to nil when empty so a binary round-trip is
// value-identical to a gob round-trip.

// AppendWire implements wire.WireAppender.
func (m Request) AppendWire(b []byte) ([]byte, error) {
	b = binenc.AppendInt(b, m.Node)
	return binenc.AppendUvarint(b, m.N), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Request) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.Node = r.Int()
	m.N = r.Uvarint()
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (m Token) AppendWire(b []byte) ([]byte, error) {
	b = binenc.AppendUvarints(b, m.LN)
	return binenc.AppendInts(b, m.Queue), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Token) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.LN = r.Uvarints()
	m.Queue = r.Ints()
	return r.Close()
}
