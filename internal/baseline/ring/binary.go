package ring

import "tokenarbiter/internal/binenc"

// Binary wire layouts for internal/wire's binary codec.

// AppendWire implements wire.WireAppender.
func (m Token) AppendWire(b []byte) ([]byte, error) {
	return binenc.AppendInt(b, m.Idle), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Token) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.Idle = r.Int()
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (m Wake) AppendWire(b []byte) ([]byte, error) {
	return binenc.AppendInt(b, m.Hops), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Wake) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.Hops = r.Int()
	return r.Close()
}
