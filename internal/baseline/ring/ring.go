// Package ring implements a LeLann-style token ring (1977): the token
// circulates around a logical ring of nodes; a node holding the token may
// enter its critical section, and passes the token to its ring successor
// afterwards (or immediately when it has nothing to do). This is the
// oldest token algorithm and the taxonomy's other endpoint: at heavy load
// it costs exactly one message per critical section — unbeatable — while
// at light load the token burns messages proportional to the ring size
// per request served.
//
// A perpetual free-running token would generate unbounded traffic in an
// idle system; like practical token rings (and the timeout discussion the
// paper cites from Stallings), this implementation parks the token when a
// full circulation saw no requests, and restarts it on demand with a
// WAKE message routed around the ring.
package ring

import (
	"fmt"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindToken = "TOKEN"
	KindWake  = "WAKE"
)

type Token struct {
	// Idle counts consecutive hops that served no critical section; at
	// N hops the token parks at the current node.
	Idle int
}

func (Token) Kind() string { return KindToken }

// wake travels the ring until it finds the parked token.
type Wake struct {
	Hops int
}

func (Wake) Kind() string { return KindWake }

// Algorithm builds a token ring; node 0 initially parks the token.
type Algorithm struct{}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "Token-ring" }

// Build implements dme.Algorithm.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodes[i] = &node{id: i, n: cfg.N}
	}
	return nodes, nil
}

type node struct {
	id, n int

	hasToken  bool // token parked here
	executing bool
	pending   int
	wakeSent  bool // a WAKE is in flight from us; don't flood
	// mayBePark records whether the token could be parked: set when an
	// idle-lap token passes through (the parking lap visits every node
	// with Idle > 0), cleared when a busy token passes. While the token
	// is provably circulating, requests need no WAKE — it will arrive on
	// its own, and skipping the WAKE is what gives the ring its
	// 1-message-per-CS cost at saturation.
	mayBePark bool
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node: the token starts parked at node 0, so
// everyone starts in the "may be parked" state.
func (nd *node) Init(dme.Context) {
	nd.mayBePark = true
	if nd.id == 0 {
		nd.hasToken = true
	}
}

func (nd *node) succ() int { return (nd.id + 1) % nd.n }

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	if nd.hasToken && !nd.executing {
		nd.serveOrPass(ctx)
		return
	}
	if !nd.hasToken && !nd.wakeSent && !nd.executing && nd.mayBePark {
		// Nudge the ring: the WAKE hops until it finds the token.
		nd.wakeSent = true
		ctx.Send(nd.id, nd.succ(), Wake{})
	}
}

// serveOrPass runs with the token parked here and no CS executing.
func (nd *node) serveOrPass(ctx dme.Context) {
	if nd.pending > 0 {
		nd.executing = true
		ctx.EnterCS(nd.id)
		return
	}
	// Nothing local: keep circulating unless the ring is quiet.
	nd.passToken(ctx, 0)
}

func (nd *node) passToken(ctx dme.Context, idle int) {
	if idle >= nd.n {
		// A full idle circulation: park until a WAKE arrives.
		return
	}
	nd.hasToken = false
	ctx.Send(nd.id, nd.succ(), Token{Idle: idle})
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch m := msg.(type) {
	case Token:
		nd.hasToken = true
		nd.wakeSent = false
		if nd.pending > 0 && !nd.executing {
			// We serve: the token is provably active, and it will leave
			// here with Idle = 0, so no WAKE is needed until a quiet lap
			// passes through again.
			nd.mayBePark = false
			nd.executing = true
			ctx.EnterCS(nd.id)
			return
		}
		// We pass without serving: this hop is part of a potentially
		// parking lap, so a future request here must send a WAKE.
		nd.mayBePark = true
		nd.passToken(ctx, m.Idle+1)
	case Wake:
		if nd.hasToken {
			if !nd.executing {
				nd.serveOrPass(ctx)
			}
			return
		}
		if m.Hops+1 < nd.n {
			ctx.Send(nd.id, nd.succ(), Wake{Hops: m.Hops + 1})
		}
	default:
		panic(fmt.Sprintf("ring: unknown message %T", msg))
	}
}

// OnCSDone implements dme.Node.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.executing = false
	if nd.pending > 0 {
		// Serve our remaining requests before passing on — the ring's
		// fairness is positional anyway.
		nd.executing = true
		ctx.EnterCS(nd.id)
		return
	}
	nd.passToken(ctx, 0)
}
