package ring

import (
	"testing"
	"testing/quick"

	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/sim"
	"tokenarbiter/internal/workload"
)

func cfg(n int, lambda float64, total, seed uint64) dme.Config {
	return dme.Config{
		N:              n,
		Seed:           seed,
		Delay:          sim.ConstantDelay{D: 0.1},
		Texec:          0.1,
		TotalRequests:  total,
		WarmupRequests: total / 10,
		MaxVirtualTime: 1e8,
		Gen: func(node int) dme.GeneratorFunc {
			return workload.Stream(workload.Poisson{Lambda: lambda}, seed, node)
		},
	}
}

func TestCompletesAcrossLoads(t *testing.T) {
	for _, lambda := range []float64{0.02, 0.2, 0.45} {
		m, err := dme.Run(&Algorithm{}, cfg(10, lambda, 5000, 1))
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		t.Logf("λ=%v: %.3f msgs/cs", lambda, m.MessagesPerCS())
		if m.CSCompleted == 0 {
			t.Error("nothing completed")
		}
	}
}

func TestHeavyLoadApproachesOneMessage(t *testing.T) {
	// With every node nearly always pending, the token does useful work
	// on every hop: the ring's celebrated 1 message per CS.
	c := cfg(10, 0, 10000, 2)
	c.ClosedLoop = true
	c.Gen = func(node int) dme.GeneratorFunc {
		return workload.Stream(workload.Poisson{Lambda: 5}, 2, node)
	}
	m, err := dme.Run(&Algorithm{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MessagesPerCS(); got > 1.6 {
		t.Errorf("saturated ring pays %.3f msgs/cs, want →1", got)
	}
}

func TestIdleRingParksToken(t *testing.T) {
	// A single burst of requests, then silence: the run must terminate
	// (an eternally circulating token would stall the drain) and the
	// message count must stay bounded.
	c := cfg(6, 0.05, 300, 3)
	m, err := dme.Run(&Algorithm{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if m.CSCompleted == 0 {
		t.Fatal("nothing completed")
	}
	// Worst case per CS at light load: a WAKE most of the way around
	// plus the token most of the way around ≈ 2N; parking keeps it from
	// exceeding that.
	if got := m.MessagesPerCS(); got > 2*6 {
		t.Errorf("light-load ring pays %.3f msgs/cs, want ≤ ≈2N", got)
	}
}

func TestPositionalFairness(t *testing.T) {
	m, err := dme.Run(&Algorithm{}, cfg(8, 0.4, 8000, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.PerNodeCS {
		if c == 0 {
			t.Errorf("node %d starved on the ring", i)
		}
	}
}

func TestSafetyProperty(t *testing.T) {
	prop := func(seed uint64, loadSel uint8) bool {
		lambda := []float64{0.1, 0.3, 0.6}[int(loadSel)%3]
		c := cfg(5, lambda, 800, seed%1000+1)
		c.MaxVirtualTime = 1e6
		_, err := dme.Run(&Algorithm{}, c)
		if err != nil {
			t.Logf("seed=%d λ=%v: %v", seed%1000+1, lambda, err)
		}
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
