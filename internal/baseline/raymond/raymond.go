// Package raymond implements Raymond's tree-based token algorithm (ACM
// TOCS 1989): nodes form a static spanning tree; each node's HOLDER
// variable points toward the token along tree edges; requests and the
// token travel hop by hop. The average cost is O(log N) messages at light
// load and approximately 4 messages at heavy load — the comparator the
// paper's abstract measures itself against.
package raymond

import (
	"fmt"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindRequest = "REQUEST"
	KindToken   = "TOKEN"
)

type Request struct{}

func (Request) Kind() string { return KindRequest }

type Token struct{}

func (Token) Kind() string { return KindToken }

// Topology names the spanning-tree shapes available.
type Topology int

// Supported tree topologies.
const (
	// BinaryTree arranges nodes as a complete binary tree rooted at 0
	// (parent(i) = (i−1)/2), the shape Raymond's analysis assumes.
	BinaryTree Topology = iota + 1
	// Chain arranges nodes in a line 0–1–…–N−1, the worst case diameter.
	Chain
	// Star connects every node directly to node 0, the best case.
	Star
	// KAryTree arranges nodes as a complete k-ary tree rooted at 0; K
	// selects the fan-out.
	KAryTree
)

// Algorithm builds a Raymond instance over the chosen topology. The zero
// value uses a binary tree.
type Algorithm struct {
	Topology Topology
	K        int // fan-out for KAryTree
}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "raymond" }

// parent returns node i's parent in the chosen tree, or -1 for the root.
func (a *Algorithm) parent(i int) (int, error) {
	if i == 0 {
		return -1, nil
	}
	switch a.Topology {
	case BinaryTree, 0:
		return (i - 1) / 2, nil
	case Chain:
		return i - 1, nil
	case Star:
		return 0, nil
	case KAryTree:
		if a.K < 2 {
			return 0, fmt.Errorf("raymond: k-ary tree needs K ≥ 2, got %d", a.K)
		}
		return (i - 1) / a.K, nil
	default:
		return 0, fmt.Errorf("raymond: unknown topology %d", a.Topology)
	}
}

// Build implements dme.Algorithm: the token starts at the tree root
// (node 0), and every HOLDER pointer initially points at the parent.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		p, err := a.parent(i)
		if err != nil {
			return nil, err
		}
		holder := p
		if i == 0 {
			holder = 0 // the root holds the token
		}
		nodes[i] = &node{id: i, holder: holder}
	}
	return nodes, nil
}

type node struct {
	id      int
	holder  int  // neighbor in the token's direction, or self
	using   bool // executing the CS
	asked   bool // a REQUEST to holder is outstanding
	queue   []int
	pending int
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node.
func (nd *node) Init(dme.Context) {}

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	nd.maybeStart(ctx)
}

func (nd *node) maybeStart(ctx dme.Context) {
	if nd.pending == 0 || nd.inQueue(nd.id) || nd.using {
		return
	}
	nd.queue = append(nd.queue, nd.id)
	nd.assignOrAsk(ctx)
}

func (nd *node) inQueue(x int) bool {
	for _, q := range nd.queue {
		if q == x {
			return true
		}
	}
	return false
}

// assignOrAsk is Raymond's ASSIGN_PRIVILEGE / MAKE_REQUEST pair: if we
// hold the token and are idle, grant the queue head; otherwise chase the
// token with a single outstanding REQUEST.
func (nd *node) assignOrAsk(ctx dme.Context) {
	if nd.holder == nd.id && !nd.using && len(nd.queue) > 0 {
		head := nd.queue[0]
		nd.queue = nd.queue[1:]
		nd.asked = false
		if head == nd.id {
			nd.using = true
			ctx.EnterCS(nd.id)
			return
		}
		nd.holder = head
		ctx.Send(nd.id, head, Token{})
		if len(nd.queue) > 0 {
			ctx.Send(nd.id, nd.holder, Request{})
			nd.asked = true
		}
		return
	}
	if nd.holder != nd.id && len(nd.queue) > 0 && !nd.asked {
		ctx.Send(nd.id, nd.holder, Request{})
		nd.asked = true
	}
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch msg.(type) {
	case Request:
		if !nd.inQueue(from) {
			nd.queue = append(nd.queue, from)
		}
		nd.assignOrAsk(ctx)
	case Token:
		nd.holder = nd.id
		nd.assignOrAsk(ctx)
	default:
		panic(fmt.Sprintf("raymond: unknown message %T", msg))
	}
}

// OnCSDone implements dme.Node.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.using = false
	nd.maybeStart(ctx)
	nd.assignOrAsk(ctx)
}
