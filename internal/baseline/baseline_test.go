// Package baseline_test holds the cross-baseline behavioural tests; the
// per-algorithm closed-form message costs are asserted in
// internal/dme/algorithms_test.go.
package baseline_test

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"tokenarbiter/internal/baseline/central"
	"tokenarbiter/internal/baseline/lamport"
	"tokenarbiter/internal/baseline/raymond"
	"tokenarbiter/internal/baseline/ricartagrawala"
	"tokenarbiter/internal/baseline/singhal"
	"tokenarbiter/internal/baseline/suzukikasami"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/sim"
	"tokenarbiter/internal/workload"
)

func cfg(n int, lambda float64, total, seed uint64) dme.Config {
	return dme.Config{
		N:              n,
		Seed:           seed,
		Delay:          sim.ConstantDelay{D: 0.1},
		Texec:          0.1,
		TotalRequests:  total,
		WarmupRequests: total / 10,
		MaxVirtualTime: 1e9,
		Gen: func(node int) dme.GeneratorFunc {
			return workload.Stream(workload.Poisson{Lambda: lambda}, seed, node)
		},
	}
}

func TestCentralCoordinatorChoice(t *testing.T) {
	// Any node can coordinate; messages drop to 3(N−1)/N regardless.
	for _, coord := range []int{0, 3, 7} {
		m, err := dme.Run(&central.Algorithm{Coordinator: coord}, cfg(8, 0.3, 4000, 1))
		if err != nil {
			t.Fatalf("coordinator %d: %v", coord, err)
		}
		want := 3.0 * 7 / 8
		if got := m.MessagesPerCS(); math.Abs(got-want) > 0.15 {
			t.Errorf("coordinator %d: %.3f msgs/cs, want ≈%.3f", coord, got, want)
		}
	}
	if _, err := dme.Run(&central.Algorithm{Coordinator: 9}, cfg(8, 0.3, 100, 1)); err == nil {
		t.Error("out-of-range coordinator accepted")
	}
}

func TestCentralFIFOService(t *testing.T) {
	// The coordinator queue is FIFO, so waiting times are near-uniform
	// across nodes (Jain index ≈ 1 on completions).
	m, err := dme.Run(&central.Algorithm{}, cfg(6, 0.4, 6000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if f := m.JainFairness(); f < 0.98 {
		t.Errorf("fairness = %.4f, want ≈1 for FIFO service", f)
	}
}

func TestRaymondTopologies(t *testing.T) {
	for _, tc := range []struct {
		name string
		algo raymond.Algorithm
	}{
		{"binary", raymond.Algorithm{Topology: raymond.BinaryTree}},
		{"chain", raymond.Algorithm{Topology: raymond.Chain}},
		{"star", raymond.Algorithm{Topology: raymond.Star}},
		{"3ary", raymond.Algorithm{Topology: raymond.KAryTree, K: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			algo := tc.algo
			m, err := dme.Run(&algo, cfg(9, 0.3, 4000, 3))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("raymond/%s: %.3f msgs/cs", tc.name, m.MessagesPerCS())
			if m.CSCompleted == 0 {
				t.Error("nothing completed")
			}
		})
	}
}

func TestRaymondStarCheapestChainDearest(t *testing.T) {
	run := func(topo raymond.Topology) float64 {
		algo := raymond.Algorithm{Topology: topo}
		m, err := dme.Run(&algo, cfg(12, 0.1, 6000, 4))
		if err != nil {
			t.Fatal(err)
		}
		return m.MessagesPerCS()
	}
	star, chain := run(raymond.Star), run(raymond.Chain)
	if star >= chain {
		t.Errorf("star (%.3f) should beat chain (%.3f) at light load", star, chain)
	}
}

func TestRaymondKAryValidation(t *testing.T) {
	algo := raymond.Algorithm{Topology: raymond.KAryTree, K: 1}
	if _, err := dme.Run(&algo, cfg(4, 0.1, 100, 1)); err == nil {
		t.Error("K=1 accepted")
	}
}

func TestSuzukiKasamiTokenHolderFree(t *testing.T) {
	// A single hot node quickly ends up holding the token permanently:
	// message cost collapses towards 0.
	c := cfg(8, 0, 5000, 5)
	c.Gen = func(node int) dme.GeneratorFunc {
		if node != 2 {
			return nil
		}
		return workload.Stream(workload.Poisson{Lambda: 3}, 5, node)
	}
	m, err := dme.Run(&suzukikasami.Algorithm{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MessagesPerCS(); got > 0.5 {
		t.Errorf("sole requester pays %.3f msgs/cs, want ≈0 once it holds the token", got)
	}
}

func TestLamportRequiresNoStarvation(t *testing.T) {
	m, err := dme.Run(&lamport.Algorithm{}, cfg(6, 0.4, 6000, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.PerNodeCS {
		if c == 0 {
			t.Errorf("node %d starved under Lamport", i)
		}
	}
}

func TestSinghalHotNodeSelfServes(t *testing.T) {
	// After its first CS, a sole requester has R = {self} and re-enters
	// for free — the defining dynamic-information-structure behaviour.
	c := cfg(10, 0, 5000, 7)
	c.Gen = func(node int) dme.GeneratorFunc {
		if node != 9 {
			return nil
		}
		return workload.Stream(workload.Poisson{Lambda: 3}, 7, node)
	}
	m, err := dme.Run(&singhal.Algorithm{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MessagesPerCS(); got > 0.5 {
		t.Errorf("hot node pays %.3f msgs/cs, want ≈0 after first CS", got)
	}
}

func TestSinghalStaircaseNodeZeroFreeStart(t *testing.T) {
	// R_0 = {0}: node 0's very first CS costs zero messages.
	c := cfg(5, 0, 10, 8)
	c.WarmupRequests = 0
	c.Gen = func(node int) dme.GeneratorFunc {
		if node != 0 {
			return nil
		}
		return workload.Stream(workload.Poisson{Lambda: 1}, 8, node)
	}
	m, err := dme.Run(&singhal.Algorithm{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalMessages != 0 {
		t.Errorf("node 0 solo run sent %d messages, want 0 (staircase init)", m.TotalMessages)
	}
}

// TestBaselineSafetyProperty: all baselines, random seeds and loads, no
// safety violations and all runs complete.
func TestBaselineSafetyProperty(t *testing.T) {
	algos := []dme.Algorithm{
		&central.Algorithm{},
		&lamport.Algorithm{},
		&ricartagrawala.Algorithm{},
		&suzukikasami.Algorithm{},
		&raymond.Algorithm{},
		&singhal.Algorithm{},
	}
	prop := func(seed uint64, loadSel, algoSel uint8) bool {
		lambda := []float64{0.05, 0.25, 0.5}[int(loadSel)%3]
		algo := algos[int(algoSel)%len(algos)]
		c := cfg(5, lambda, 800, seed%1000+1)
		c.MaxVirtualTime = 1e7
		_, err := dme.Run(algo, c)
		if err != nil {
			t.Logf("%s seed=%d λ=%v: %v", algo.Name(), seed%1000+1, lambda, err)
		}
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 72}); err != nil {
		t.Error(err)
	}
}

// TestBaselinesUnderJitteredDelays runs every baseline under uniformly
// distributed (non-FIFO-breaking for token algorithms, FIFO-sensitive for
// Lamport — excluded) network delays.
func TestBaselinesUnderJitteredDelays(t *testing.T) {
	algos := []dme.Algorithm{
		&central.Algorithm{},
		&ricartagrawala.Algorithm{},
		&suzukikasami.Algorithm{},
		&raymond.Algorithm{},
		&singhal.Algorithm{},
	}
	for _, algo := range algos {
		algo := algo
		t.Run(algo.Name(), func(t *testing.T) {
			c := cfg(6, 0.3, 3000, 9)
			c.Delay = sim.UniformDelay{Min: 0.05, Max: 0.2}
			if _, err := dme.Run(algo, c); err != nil {
				t.Fatalf("%s under jitter: %v", algo.Name(), err)
			}
		})
	}
}

// TestClosedLoopSaturation runs every algorithm in the closed-loop
// heavy-load regime and records the message ordering the paper's
// comparison implies: arbiter < raymond-ish < suzuki-kasami <
// ricart-agrawala < lamport.
func TestClosedLoopSaturation(t *testing.T) {
	think := workload.Poisson{Lambda: 2.5}
	base := cfg(10, 0, 10000, 10)
	base.ClosedLoop = true
	base.Gen = func(node int) dme.GeneratorFunc {
		return workload.Stream(think, 10, node)
	}
	results := map[string]float64{}
	for _, algo := range []dme.Algorithm{
		&ricartagrawala.Algorithm{},
		&suzukikasami.Algorithm{},
		&raymond.Algorithm{},
		&lamport.Algorithm{},
	} {
		m, err := dme.Run(algo, base)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		results[algo.Name()] = m.MessagesPerCS()
		t.Logf("%s: %.3f msgs/cs at saturation", algo.Name(), m.MessagesPerCS())
	}
	if !(results["raymond"] < results["suzuki-kasami"] &&
		results["suzuki-kasami"] < results["ricart-agrawala"] &&
		results["ricart-agrawala"] < results["lamport"]) {
		t.Errorf("saturation ordering violated: %v", results)
	}
	// Raymond's heavy-load cost is famously ≈4.
	if r := results["raymond"]; r < 2 || r > 6 {
		t.Errorf("raymond at saturation = %.3f, want ≈4", r)
	}
}

func Example() {
	for _, a := range []dme.Algorithm{
		&central.Algorithm{},
		&lamport.Algorithm{},
		&ricartagrawala.Algorithm{},
		&suzukikasami.Algorithm{},
		&raymond.Algorithm{},
		&singhal.Algorithm{},
	} {
		fmt.Println(a.Name())
	}
	// Output:
	// central
	// lamport
	// ricart-agrawala
	// suzuki-kasami
	// raymond
	// singhal-dynamic
}
