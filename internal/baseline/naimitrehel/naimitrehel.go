// Package naimitrehel implements the Naimi-Trehel token algorithm (1987):
// a dynamic tree of "probable owner" pointers routes each REQUEST to the
// last requester (path-compressing the tree on the way), and a separate
// "next" chain hands the token over in request order. The average cost is
// O(log N) messages per critical section — the modern comparison point
// for token-based mutual exclusion, complementing the static-tree Raymond
// baseline the paper measures against.
package naimitrehel

import (
	"fmt"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindRequest = "REQUEST"
	KindToken   = "TOKEN"
)

type Request struct {
	Origin int // the requesting node (requests are forwarded)
}

func (Request) Kind() string { return KindRequest }

type Token struct{}

func (Token) Kind() string { return KindToken }

// Algorithm builds a Naimi-Trehel instance; node 0 is the initial owner.
type Algorithm struct{}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "naimi-trehel" }

// Build implements dme.Algorithm.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		owner := 0
		if i == 0 {
			owner = -1 // the owner's pointer is nil: requests stop here
		}
		nodes[i] = &node{id: i, owner: owner, next: -1}
	}
	return nodes, nil
}

type node struct {
	id int

	// owner is the "probable owner" pointer (called last/father in the
	// literature): where to send requests; -1 at the tree root.
	owner int
	// next is the node to hand the token to after our own CS; -1 when
	// nobody is queued behind us.
	next int

	hasToken   bool
	requesting bool
	executing  bool
	pending    int
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node: node 0 holds the token.
func (nd *node) Init(dme.Context) {
	if nd.id == 0 {
		nd.hasToken = true
	}
}

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	nd.maybeStart(ctx)
}

func (nd *node) maybeStart(ctx dme.Context) {
	if nd.requesting || nd.executing || nd.pending == 0 {
		return
	}
	nd.requesting = true
	if nd.hasToken {
		nd.enter(ctx)
		return
	}
	// Ask the probable owner and become the new root: subsequent
	// requests that reach the old path get forwarded to us.
	ctx.Send(nd.id, nd.owner, Request{Origin: nd.id})
	nd.owner = -1
}

func (nd *node) enter(ctx dme.Context) {
	nd.executing = true
	ctx.EnterCS(nd.id)
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch m := msg.(type) {
	case Request:
		nd.onRequest(ctx, m.Origin)
	case Token:
		nd.hasToken = true
		if nd.requesting && !nd.executing {
			nd.enter(ctx)
		}
	default:
		panic(fmt.Sprintf("naimitrehel: unknown message %T", msg))
	}
}

func (nd *node) onRequest(ctx dme.Context, origin int) {
	if nd.owner == -1 {
		// We are the root: origin becomes our successor (if we still
		// care about the token) or receives the token right away.
		if nd.requesting || nd.executing {
			nd.next = origin
		} else if nd.hasToken {
			nd.hasToken = false
			ctx.Send(nd.id, origin, Token{})
		} else {
			// Root without token and not requesting: we are waiting for
			// the token solely to pass it to a previous next... cannot
			// happen (next is set only while requesting); treat origin
			// as successor defensively.
			nd.next = origin
		}
	} else {
		// Not the root: forward toward the probable owner.
		ctx.Send(nd.id, nd.owner, Request{Origin: origin})
	}
	// Path compression: the requester is the new probable owner.
	nd.owner = origin
}

// OnCSDone implements dme.Node.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.requesting = false
	nd.executing = false
	if nd.next != -1 {
		nd.hasToken = false
		ctx.Send(nd.id, nd.next, Token{})
		nd.next = -1
	}
	nd.maybeStart(ctx)
}
