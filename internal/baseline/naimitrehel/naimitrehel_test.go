package naimitrehel

import (
	"math"
	"testing"
	"testing/quick"

	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/sim"
	"tokenarbiter/internal/workload"
)

func cfg(n int, lambda float64, total, seed uint64) dme.Config {
	return dme.Config{
		N:              n,
		Seed:           seed,
		Delay:          sim.ConstantDelay{D: 0.1},
		Texec:          0.1,
		TotalRequests:  total,
		WarmupRequests: total / 10,
		MaxVirtualTime: 1e8,
		Gen: func(node int) dme.GeneratorFunc {
			return workload.Stream(workload.Poisson{Lambda: lambda}, seed, node)
		},
	}
}

func TestCompletesAcrossLoads(t *testing.T) {
	for _, lambda := range []float64{0.02, 0.2, 0.45} {
		m, err := dme.Run(&Algorithm{}, cfg(10, lambda, 5000, 1))
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		t.Logf("λ=%v: %.3f msgs/cs", lambda, m.MessagesPerCS())
		if m.CSCompleted == 0 {
			t.Error("nothing completed")
		}
	}
}

func TestHotNodeIsFree(t *testing.T) {
	// The hot node becomes the tree root and re-enters for free.
	c := cfg(10, 0, 5000, 2)
	c.Gen = func(node int) dme.GeneratorFunc {
		if node != 7 {
			return nil
		}
		return workload.Stream(workload.Poisson{Lambda: 3}, 2, node)
	}
	m, err := dme.Run(&Algorithm{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MessagesPerCS(); got > 0.1 {
		t.Errorf("hot node pays %.3f msgs/cs, want ≈0 once it owns the token", got)
	}
}

func TestLogNScaling(t *testing.T) {
	// Path compression keeps the average request path logarithmic: the
	// per-CS message count at moderate load grows far slower than N.
	costs := map[int]float64{}
	for _, n := range []int{8, 64} {
		m, err := dme.Run(&Algorithm{}, cfg(n, 0.1, 6000, 3))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		costs[n] = m.MessagesPerCS()
		t.Logf("N=%d: %.3f msgs/cs", n, m.MessagesPerCS())
	}
	// 8× more nodes must cost far less than 8× more messages; the
	// classical result is O(log N), so expect roughly double.
	if ratio := costs[64] / costs[8]; ratio > 4 || math.IsNaN(ratio) {
		t.Errorf("cost ratio N=64/N=8 is %.2f, want ≈log ratio (≈2)", ratio)
	}
}

func TestNoStarvationUnderContention(t *testing.T) {
	m, err := dme.Run(&Algorithm{}, cfg(8, 0.5, 8000, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.PerNodeCS {
		if c == 0 {
			t.Errorf("node %d starved", i)
		}
	}
}

func TestSafetyProperty(t *testing.T) {
	prop := func(seed uint64, loadSel uint8) bool {
		lambda := []float64{0.1, 0.3, 0.6}[int(loadSel)%3]
		c := cfg(6, lambda, 1000, seed%1000+1)
		c.MaxVirtualTime = 1e6
		_, err := dme.Run(&Algorithm{}, c)
		if err != nil {
			t.Logf("seed=%d λ=%v: %v", seed%1000+1, lambda, err)
		}
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
