package naimitrehel

import "tokenarbiter/internal/binenc"

// Binary wire layouts for internal/wire's binary codec.

// AppendWire implements wire.WireAppender.
func (m Request) AppendWire(b []byte) ([]byte, error) {
	return binenc.AppendInt(b, m.Origin), nil
}

// UnmarshalWire implements wire.WireUnmarshaler.
func (m *Request) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	m.Origin = r.Int()
	return r.Close()
}

// AppendWire implements wire.WireAppender.
func (Token) AppendWire(b []byte) ([]byte, error) { return b, nil }

// UnmarshalWire implements wire.WireUnmarshaler.
func (*Token) UnmarshalWire(data []byte) error {
	r := binenc.NewReader(data)
	return r.Close()
}
