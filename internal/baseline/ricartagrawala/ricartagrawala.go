// Package ricartagrawala implements the Ricart-Agrawala distributed
// mutual exclusion algorithm (CACM 1981): a requester broadcasts a
// timestamped REQUEST and enters the critical section after receiving a
// REPLY from every other node; nodes defer their REPLY while they are in
// the CS or are requesting with an older timestamp. It costs 2(N−1)
// messages per critical section at every load and is the static-class
// comparison curve of the paper's Figure 6.
package ricartagrawala

import (
	"fmt"

	"tokenarbiter/internal/dme"
)

// Message kinds.
const (
	KindRequest = "REQUEST"
	KindReply   = "REPLY"
)

type Request struct {
	TS   uint64
	Node int
}

func (Request) Kind() string { return KindRequest }

type Reply struct{}

func (Reply) Kind() string { return KindReply }

// Algorithm builds a Ricart-Agrawala instance.
type Algorithm struct{}

var _ dme.Algorithm = (*Algorithm)(nil)

// Name implements dme.Algorithm.
func (a *Algorithm) Name() string { return "ricart-agrawala" }

// Build implements dme.Algorithm.
func (a *Algorithm) Build(cfg dme.Config) ([]dme.Node, error) {
	nodes := make([]dme.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodes[i] = &node{id: i, n: cfg.N}
	}
	return nodes, nil
}

type node struct {
	id, n int

	clock      uint64
	requesting bool
	executing  bool
	myTS       uint64
	replies    int
	deferred   []int
	pending    int // locally queued CS requests beyond the one in flight
}

// ID implements dme.Node.
func (nd *node) ID() int { return nd.id }

// Init implements dme.Node.
func (nd *node) Init(dme.Context) {}

// OnRequest implements dme.Node.
func (nd *node) OnRequest(ctx dme.Context) {
	nd.pending++
	nd.maybeStart(ctx)
}

func (nd *node) maybeStart(ctx dme.Context) {
	if nd.requesting || nd.executing || nd.pending == 0 {
		return
	}
	nd.requesting = true
	nd.replies = 0
	nd.clock++
	nd.myTS = nd.clock
	if nd.n == 1 {
		nd.enter(ctx)
		return
	}
	ctx.Broadcast(nd.id, Request{TS: nd.myTS, Node: nd.id})
}

func (nd *node) enter(ctx dme.Context) {
	nd.executing = true
	ctx.EnterCS(nd.id)
}

// OnMessage implements dme.Node.
func (nd *node) OnMessage(ctx dme.Context, from int, msg dme.Message) {
	switch m := msg.(type) {
	case Request:
		if m.TS > nd.clock {
			nd.clock = m.TS
		}
		// Defer while executing, or while requesting with priority
		// (older timestamp, node id breaking ties).
		defer_ := nd.executing ||
			(nd.requesting && (nd.myTS < m.TS || (nd.myTS == m.TS && nd.id < m.Node)))
		if defer_ {
			nd.deferred = append(nd.deferred, from)
			return
		}
		ctx.Send(nd.id, from, Reply{})
	case Reply:
		if !nd.requesting {
			return
		}
		nd.replies++
		if nd.replies == nd.n-1 {
			nd.enter(ctx)
		}
	default:
		panic(fmt.Sprintf("ricartagrawala: unknown message %T", msg))
	}
}

// OnCSDone implements dme.Node.
func (nd *node) OnCSDone(ctx dme.Context) {
	nd.pending--
	nd.requesting = false
	nd.executing = false
	for _, to := range nd.deferred {
		ctx.Send(nd.id, to, Reply{})
	}
	nd.deferred = nd.deferred[:0]
	nd.maybeStart(ctx)
}
