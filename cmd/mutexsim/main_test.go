package main

import "testing"

func TestRunRejectsBadInvocations(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"-lambdas", "zz", "fig345"}); err == nil {
		t.Error("malformed -lambdas accepted")
	}
}

func TestRunQuickAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation batch")
	}
	err := run([]string{"-quick", "-reps", "2", "-requests", "4000", "analysis"})
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
}

func TestRunQuickFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation batch")
	}
	err := run([]string{"-requests", "4000", "-reps", "2", "-lambdas", "0.1,0.4", "fairness"})
	if err != nil {
		t.Fatalf("fairness: %v", err)
	}
}

func TestRunQuickFig345WithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation batch")
	}
	err := run([]string{"-requests", "3000", "-reps", "2", "-csv", "-lambdas", "0.1,0.4", "fig345"})
	if err != nil {
		t.Fatalf("fig345: %v", err)
	}
}
