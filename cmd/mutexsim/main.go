// Command mutexsim regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each subcommand runs
// one experiment and prints an aligned table (and optionally CSV):
//
//	mutexsim fig345     Figures 3, 4, 5: messages / delay / forwarded vs. load
//	mutexsim fig6       Figure 6: comparison with other algorithms
//	mutexsim analysis   E5/E6: Eq. (1)–(6) vs. simulation
//	mutexsim monitor    E7: starvation-free variant overhead
//	mutexsim recovery   E8: §6 failure-injection scenarios
//	mutexsim scaling    E9: messages/CS vs. N at the load extremes
//	mutexsim ablation   E10: collection/forwarding duration sweep
//	mutexsim delays     E11: delay-model robustness ablation
//	mutexsim volume     E12: message volume (payload units) comparison
//	mutexsim fairness   §5.1 strict-fairness (least-served-first) study
//	mutexsim model      batch-polling model vs. simulation (intermediate loads)
//	mutexsim tuning     E15: §6 recovery-timeout sensitivity under loss
//	mutexsim trace      replay the §2.2 worked example, print the messages
//	mutexsim replay F   re-execute a flight-recorder capture deterministically:
//	                    the canonical grant/fence log goes to stdout (two
//	                    replays of one capture are byte-identical), the
//	                    fidelity summary to stderr
//	mutexsim all        everything above, in order (replay excepted)
//
// Common flags: -n nodes, -requests per run, -reps replications, -seed,
// -csv (emit CSV after each table), -quick (small fast runs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/experiments"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/reqtrace"
	"tokenarbiter/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mutexsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mutexsim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 10, "number of nodes")
		requests = fs.Uint64("requests", 200_000, "CS requests per run")
		reps     = fs.Int("reps", 5, "independent replications per point")
		seed     = fs.Uint64("seed", 1, "base random seed")
		csv      = fs.Bool("csv", false, "also print CSV for each figure")
		quick    = fs.Bool("quick", false, "small fast runs (requests=20000, reps=3)")
		procs    = fs.Int("procs", 0, "concurrent simulation jobs (0 = one per CPU)")
		progress = fs.Bool("progress", true, "live progress/ETA line on stderr")
		lambdas  = fs.String("lambdas", "", "comma-separated per-node arrival rates")
		spark    = fs.Bool("spark", true, "print unicode sparkline curve previews")
		svgDir   = fs.String("svg", "", "directory to write <figure-id>.svg files into")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mutexsim [flags] <fig345|fig6|analysis|monitor|recovery|scaling|ablation|delays|volume|fairness|model|tuning|trace|all>")
		fmt.Fprintln(os.Stderr, "       mutexsim replay <capture.jsonl>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd := fs.Arg(0)

	s := experiments.DefaultSetup()
	s.N = *n
	s.Requests = *requests
	s.Reps = *reps
	s.Seed = *seed
	s.Procs = *procs
	if *quick {
		s.Requests = 20_000
		s.Reps = 3
	}
	pl := &progressLine{out: os.Stderr, enabled: *progress}
	s.Progress = pl.update

	var ls []float64
	if *lambdas != "" {
		for _, tok := range strings.Split(*lambdas, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad -lambdas entry %q: %w", tok, err)
			}
			ls = append(ls, v)
		}
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return fmt.Errorf("creating -svg dir: %w", err)
		}
	}
	p := printer{csv: *csv, spark: *spark, svgDir: *svgDir}
	type experiment struct {
		name string
		run  func() error
	}
	all := []experiment{
		{"fig345", func() error { return p.fig345(s, ls) }},
		{"fig6", func() error { return p.fig6(s, ls) }},
		{"analysis", func() error { return p.analysis(s) }},
		{"monitor", func() error { return p.monitor(s, ls) }},
		{"recovery", func() error { return p.recovery(s) }},
		{"scaling", func() error { return p.scaling(s) }},
		{"ablation", func() error { return p.ablation(s) }},
		{"delays", func() error { return p.delays(s, ls) }},
		{"volume", func() error { return p.volume(s, ls) }},
		{"fairness", func() error { return p.fairness(s) }},
		{"model", func() error { return p.model(s, ls) }},
		{"tuning", func() error { return p.tuning(s) }},
	}
	timed := func(e experiment) error {
		pl.begin(e.name)
		start := time.Now()
		err := e.run()
		pl.clear()
		if err == nil {
			fmt.Fprintf(os.Stderr, "[%s] wall time %s\n", e.name, time.Since(start).Round(time.Millisecond))
		}
		return err
	}
	switch cmd {
	case "fig3", "fig4", "fig5":
		cmd = "fig345"
	case "trace":
		return p.trace()
	case "replay":
		return replayCapture(fs.Args()[1:])
	case "all":
		for _, e := range all {
			if err := timed(e); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range all {
		if e.name == cmd {
			return timed(e)
		}
	}
	fs.Usage()
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// replayCapture is the `mutexsim replay` subcommand: parse a flight-
// recorder capture, re-execute it on the deterministic kernel against
// fresh state machines of the capture's algorithm, and print the
// canonical grant/fence log on stdout. The log is the replay's whole
// observable output, so `mutexsim replay f > a; mutexsim replay f > b;
// cmp a b` is the determinism check CI runs.
func replayCapture(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: mutexsim replay <capture.jsonl>")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	capture, err := reqtrace.ReadCapture(f)
	if err != nil {
		return err
	}
	// The captured envelopes reopen through the normal wire path, so the
	// algorithm's message types must be gob-registered first.
	if _, err := registry.RegisterWire(capture.Header.Algo); err != nil {
		return fmt.Errorf("capture algorithm %q: %w", capture.Header.Algo, err)
	}
	factory, err := registry.NewLiveFactory(capture.Header.Algo, nil)
	if err != nil {
		return fmt.Errorf("capture algorithm %q: %w", capture.Header.Algo, err)
	}
	collector := reqtrace.NewCollector(reqtrace.DefaultDepth)
	res, err := reqtrace.Replay(capture, factory, collector)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"replay: algo=%s n=%d records=%d | grants replayed=%d recorded=%d | suppressed-sends=%d orphan-releases=%d open-errors=%d\n",
		capture.Header.Algo, capture.Header.N, len(capture.Records),
		len(res.Grants), len(res.Recorded),
		res.SuppressedSends, res.OrphanReleases, res.OpenErrors)
	if completed, open, _ := collector.Totals(); completed+open > 0 {
		fmt.Fprintf(os.Stderr, "replay: traces completed=%d open=%d\n", completed, open)
	}
	_, err = os.Stdout.Write(reqtrace.GrantLog(res.Grants))
	return err
}

// progressLine renders a single in-place status line on stderr while an
// experiment's job batches drain: jobs finished, percent, and an ETA
// extrapolated from the mean job time of the current batch. Experiments
// run several batches; the line resets its clock whenever a new batch
// starts (done counter goes backwards).
type progressLine struct {
	mu       sync.Mutex
	out      io.Writer
	enabled  bool
	label    string
	start    time.Time
	lastDone int
	width    int
}

func (pl *progressLine) begin(label string) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.label = label
	pl.start = time.Now()
	pl.lastDone = 0
}

// update is the experiments.Setup Progress hook.
func (pl *progressLine) update(done, total int) {
	if !pl.enabled {
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if done <= pl.lastDone {
		pl.start = time.Now() // new batch within the same experiment
	}
	pl.lastDone = done
	eta := "?"
	if elapsed := time.Since(pl.start); done > 0 && done < total {
		left := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
		eta = left.Round(time.Second).String()
	} else if done == total {
		eta = "0s"
	}
	line := fmt.Sprintf("[%s] %d/%d jobs (%d%%) eta %s", pl.label, done, total, 100*done/total, eta)
	if len(line) > pl.width {
		pl.width = len(line)
	}
	fmt.Fprintf(pl.out, "\r%-*s", pl.width, line)
}

// clear erases the status line so tables print on a clean row.
func (pl *progressLine) clear() {
	if !pl.enabled {
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.width > 0 {
		fmt.Fprintf(pl.out, "\r%-*s\r", pl.width, "")
	}
	pl.width = 0
}

type printer struct {
	csv    bool
	spark  bool
	svgDir string
}

func (p printer) figure(f *experiments.Figure) {
	fmt.Println(f.Table())
	if p.spark {
		fmt.Println(f.Sparkline(0))
	}
	if p.csv {
		fmt.Println(f.CSV())
	}
	if p.svgDir != "" {
		path := filepath.Join(p.svgDir, f.ID+".svg")
		svg, err := f.Chart().SVG()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mutexsim: rendering %s: %v\n", f.ID, err)
			return
		}
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mutexsim: writing %s: %v\n", path, err)
			return
		}
		fmt.Printf("wrote %s\n\n", path)
	}
}

func (p printer) fig345(s experiments.Setup, ls []float64) error {
	res, err := experiments.RunFig345(s, ls)
	if err != nil {
		return err
	}
	p.figure(res.Messages)
	p.figure(res.Delay)
	p.figure(res.Forwarded)
	return nil
}

func (p printer) fig6(s experiments.Setup, ls []float64) error {
	fig, err := experiments.RunFig6(s, ls, true)
	if err != nil {
		return err
	}
	p.figure(fig)
	return nil
}

func (p printer) analysis(s experiments.Setup) error {
	res, err := experiments.RunAnalysis(s, 0.1)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func (p printer) monitor(s experiments.Setup, ls []float64) error {
	fig, err := experiments.RunMonitorOverhead(s, ls)
	if err != nil {
		return err
	}
	p.figure(fig)
	return nil
}

func (p printer) recovery(s experiments.Setup) error {
	res, err := experiments.RunRecovery(s, nil)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func (p printer) scaling(s experiments.Setup) error {
	res, err := experiments.RunScaling(s, nil)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func (p printer) ablation(s experiments.Setup) error {
	res, err := experiments.RunPhaseAblation(s, 0.2, nil, nil)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func (p printer) delays(s experiments.Setup, ls []float64) error {
	msgs, delay, err := experiments.RunDelayAblation(s, ls)
	if err != nil {
		return err
	}
	p.figure(msgs)
	p.figure(delay)
	return nil
}

func (p printer) volume(s experiments.Setup, ls []float64) error {
	fig, err := experiments.RunVolumeComparison(s, ls)
	if err != nil {
		return err
	}
	p.figure(fig)
	return nil
}

func (p printer) fairness(s experiments.Setup) error {
	res, err := experiments.RunFairnessComparison(s)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func (p printer) tuning(s experiments.Setup) error {
	res, err := experiments.RunRecoveryTuning(s, 0.005, nil)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func (p printer) model(s experiments.Setup, ls []float64) error {
	res, err := experiments.RunModelValidation(s, ls)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

// trace replays the paper's §2.2 worked example (Figure 2) — five nodes,
// all protocol parameters set to 1 time unit, the four requests of the
// example — and prints every message on the wire. The expected outcome is
// the paper's: batches {2,5} then {4,3} (1-indexed), one forwarded
// request, critical sections in the order 2, 5, 4, 3.
func (p printer) trace() error {
	rec := &dme.TraceRecorder{}
	cfg := dme.Config{
		N:              5,
		Seed:           1,
		Delay:          sim.ConstantDelay{D: 1},
		Texec:          1,
		TotalRequests:  4,
		MaxVirtualTime: 100,
		Trace:          rec.Record,
	}
	r, err := dme.NewRunner(core.New(core.Options{Treq: 1, Tfwd: 1}), cfg)
	if err != nil {
		return err
	}
	r.ScheduleAt(0.05, func() { r.InjectRequest(1) })
	r.ScheduleAt(0.25, func() { r.InjectRequest(4) })
	r.ScheduleAt(1.30, func() { r.InjectRequest(3) })
	r.ScheduleAt(3.50, func() { r.InjectRequest(2) })
	if _, err := r.Run(); err != nil {
		return err
	}
	fmt.Println("Paper §2.2 worked example (nodes 0-4 = paper nodes 1-5):")
	fmt.Println()
	fmt.Print(rec.String())
	fmt.Printf("\ncritical-section order: %v (paper: 2, 5, 4, 3 → 1, 4, 3, 2)\n", rec.CSOrder())
	return nil
}
