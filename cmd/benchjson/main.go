// Command benchjson converts `go test -bench` text output into the
// repository's benchmark-trajectory JSON (BENCH_<date>.json). It reads
// the benchmark output on stdin and writes one JSON document:
//
//	go test -run '^$' -bench . -benchmem . ./internal/sim | benchjson -o BENCH_$(date +%F).json
//
// Every metric pair on a benchmark line is kept — the standard ns/op,
// B/op and allocs/op as well as custom testing.B ReportMetric units such
// as cs/sec and msgs/cs — so the file carries the full trajectory point
// without benchjson knowing the unit names in advance. `make bench`
// wraps the pipeline above; CI runs the same tool on a -benchtime=1x
// smoke pass and uploads the artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Procs      int                `json:"procs,omitempty"` // the -N suffix (GOMAXPROCS)
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the BENCH_<date>.json document. Baseline, when present, maps
// benchmark name → metric → value for the run this point is compared
// against (the previous trajectory file, or hand-recorded numbers for
// the first point); benchjson itself never writes it.
type File struct {
	Date       string                        `json:"date"`
	GoOS       string                        `json:"goos,omitempty"`
	GoArch     string                        `json:"goarch,omitempty"`
	CPU        string                        `json:"cpu,omitempty"`
	Baseline   map[string]map[string]float64 `json:"baseline,omitempty"`
	Benchmarks []Benchmark                   `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out  = fs.String("o", "", "output file (default stdout)")
		date = fs.String("date", time.Now().Format("2006-01-02"), "date stamp for the document")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	doc, err := parse(stdin, *date)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

func parse(r io.Reader, date string) (*File, error) {
	doc := &File{Date: date}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkFoo-8  100  400815 ns/op  249919 cs/sec  156467 B/op  3454 allocs/op
//
// The fields after the iteration count are (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: make(map[string]float64, (len(fields)-2)/2)}
	// The -N GOMAXPROCS suffix is after the LAST dash; sub-benchmark
	// names may themselves contain dashes.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
