package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tokenarbiter
cpu: AMD EPYC 7B13
BenchmarkSimulatorThroughput-8   	       4	 292973498 ns/op	    546936 cs/sec	     27564 B/op	     499 allocs/op
BenchmarkFig6Comparison-8        	       1	1200000000 ns/op
PASS
pkg: tokenarbiter/internal/sim
BenchmarkScheduleStep-8          	13651908	        87.78 ns/op	       0 B/op	       0 allocs/op
BenchmarkCancelHeavy/deep-queue-8	 1000000	       605.6 ns/op	       0 B/op	       0 allocs/op
ok  	tokenarbiter/internal/sim	2.5s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample), "2026-08-05")
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("header not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(doc.Benchmarks))
	}

	b := doc.Benchmarks[0]
	if b.Name != "SimulatorThroughput" || b.Procs != 8 || b.Package != "tokenarbiter" {
		t.Errorf("first benchmark: %+v", b)
	}
	if b.Metrics["cs/sec"] != 546936 || b.Metrics["allocs/op"] != 499 {
		t.Errorf("custom/benchmem metrics lost: %v", b.Metrics)
	}

	// Package header changes mid-stream.
	if doc.Benchmarks[2].Package != "tokenarbiter/internal/sim" {
		t.Errorf("package not tracked: %+v", doc.Benchmarks[2])
	}
	if doc.Benchmarks[2].Metrics["ns/op"] != 87.78 {
		t.Errorf("fractional ns/op lost: %v", doc.Benchmarks[2].Metrics)
	}

	// Sub-benchmark with a dash keeps its name, sheds only the -N suffix.
	if got := doc.Benchmarks[3].Name; got != "CancelHeavy/deep-queue" {
		t.Errorf("sub-benchmark name = %q", got)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken", // no fields
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkBroken-8 10 x ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
