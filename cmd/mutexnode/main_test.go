package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/faultnet"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/session"
	"tokenarbiter/internal/transport"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the expected error; "" = success
		check   func(*testing.T, *nodeConfig)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, cfg *nodeConfig) {
				if cfg.algo != registry.Core || cfg.keys != 1 || cfg.n != 3 || cfg.id != 0 {
					t.Errorf("defaults = algo %q keys %d n %d id %d", cfg.algo, cfg.keys, cfg.n, cfg.id)
				}
			},
		},
		{
			name: "multi key baseline",
			args: []string{"-keys", "8", "-algo", "raymond", "-peers", "a:1,b:2", "-id", "1"},
			check: func(t *testing.T, cfg *nodeConfig) {
				if cfg.keys != 8 || cfg.algo != "raymond" || cfg.n != 2 || cfg.id != 1 {
					t.Errorf("cfg = algo %q keys %d n %d id %d", cfg.algo, cfg.keys, cfg.n, cfg.id)
				}
				if cfg.addrs[0] != "a:1" || cfg.addrs[1] != "b:2" {
					t.Errorf("addrs = %v", cfg.addrs)
				}
			},
		},
		{
			name: "algo list short-circuits validation",
			args: []string{"-algo", "list", "-id", "99", "-keys", "0"},
			check: func(t *testing.T, cfg *nodeConfig) {
				if !cfg.listAlgos {
					t.Error("listAlgos not set")
				}
			},
		},
		{name: "unknown algorithm", args: []string{"-algo", "paxos-deluxe"}, wantErr: "unknown algorithm"},
		{name: "id beyond peers", args: []string{"-id", "5"}, wantErr: "outside peer list"},
		{name: "negative id", args: []string{"-id", "-1"}, wantErr: "outside peer list"},
		{name: "zero keys", args: []string{"-keys", "0"}, wantErr: "at least one lock key"},
		{name: "negative keys", args: []string{"-keys", "-3"}, wantErr: "at least one lock key"},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: "flag provided but not defined"},
		{
			name: "session service",
			args: []string{"-session", ":7100"},
			check: func(t *testing.T, cfg *nodeConfig) {
				if cfg.session != ":7100" {
					t.Errorf("session = %q, want :7100", cfg.session)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseFlags(%v) accepted, want error containing %q", tc.args, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseFlags(%v): %v", tc.args, err)
			}
			if tc.check != nil {
				tc.check(t, cfg)
			}
		})
	}
}

func TestRunRejectsBadChaosSpec(t *testing.T) {
	err := run([]string{"-id", "0", "-peers", "127.0.0.1:0", "-chaos", "bogus=1"})
	if err == nil || !strings.Contains(err.Error(), "-chaos") {
		t.Fatalf("bad chaos spec: err = %v, want -chaos parse error", err)
	}
}

// TestAdminHandlerMultiKey drives the composed admin surface — the
// Manager's multi-key handler plus the /debug/faults injector endpoint —
// exactly as run() assembles it for -keys > 1 with -chaos set.
func TestAdminHandlerMultiKey(t *testing.T) {
	net := transport.NewMemNetwork(1, transport.MemOptions{})
	defer net.Close()
	mgr, err := live.NewManager(live.ManagerConfig{
		ID: 0, N: 1, Transport: net.Endpoint(0),
		Factory: registry.CoreLiveFactory(core.Options{Treq: 0.001, Tfwd: 0.001, RetransmitTimeout: 0.5}),
		Algo:    "core",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close() //nolint:errcheck // test shutdown

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, key := range []string{keyName(0), keyName(1)} {
		if err := mgr.Lock(ctx, key); err != nil {
			t.Fatalf("lock %s: %v", key, err)
		}
		mgr.Unlock(key)
	}

	inj := faultnet.New(faultnet.Options{Seed: 1, Algo: "core"})
	handler, endpoints := adminHandler(mgr.AdminHandler(), inj, nil)
	if !strings.Contains(endpoints, "/debug/faults") {
		t.Errorf("endpoint banner %q misses /debug/faults", endpoints)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close() //nolint:errcheck // test read
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, `cs_granted_total{key="lock-0"} 1`) ||
		!strings.Contains(body, `cs_granted_total{key="lock-1"} 1`) {
		t.Errorf("/metrics = %d, missing per-key grant counters:\n%s", code, body)
	}
	code, body := get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d", code)
	}
	var st live.ManagerStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz JSON: %v", err)
	}
	if st.KeyCount != 2 || st.Granted != 2 {
		t.Errorf("/statusz key_count=%d granted=%d, want 2/2", st.KeyCount, st.Granted)
	}
	if code, _ := get("/statusz?key=" + keyName(0)); code != http.StatusOK {
		t.Errorf("/statusz?key=%s = %d", keyName(0), code)
	}
	if code, _ := get("/statusz?key=nope"); code != http.StatusNotFound {
		t.Errorf("/statusz?key=nope = %d, want 404", code)
	}
	if code, _ := get("/debug/faults"); code != http.StatusOK {
		t.Errorf("/debug/faults = %d", code)
	}
}

// TestAdminHandlerSingleKey checks the -keys 1 composition: the plain
// node handler passes through untouched when no injector is configured.
func TestAdminHandlerSingleKey(t *testing.T) {
	net := transport.NewMemNetwork(1, transport.MemOptions{})
	defer net.Close()
	node, err := live.NewNode(live.Config{
		ID: 0, N: 1, Transport: net.Endpoint(0),
		Factory: registry.CoreLiveFactory(core.Options{Treq: 0.001, Tfwd: 0.001, RetransmitTimeout: 0.5}),
		Algo:    "core",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close() //nolint:errcheck // test shutdown

	handler, endpoints := adminHandler(node.AdminHandler(), nil, nil)
	if strings.Contains(endpoints, "/debug/faults") {
		t.Errorf("endpoint banner %q lists /debug/faults without an injector", endpoints)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test read
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz = %d", resp.StatusCode)
	}
}

// TestAdminHandlerWithSessions assembles the -session composition the
// way run() does — Manager backend, session server on a loopback
// listener, session surface mounted under /session/ — and drives one
// real client through lease, acquire, and release, then reads the
// result back through the mounted admin endpoints.
func TestAdminHandlerWithSessions(t *testing.T) {
	memNet := transport.NewMemNetwork(1, transport.MemOptions{})
	defer memNet.Close()
	mgr, err := live.NewManager(live.ManagerConfig{
		ID: 0, N: 1, Transport: memNet.Endpoint(0),
		Factory: registry.CoreLiveFactory(core.Options{Treq: 0.001, Tfwd: 0.001, RetransmitTimeout: 0.5}),
		Algo:    "core",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close() //nolint:errcheck // test shutdown

	ssrv, err := session.NewServer(session.Config{Backend: mgr})
	if err != nil {
		t.Fatal(err)
	}
	defer ssrv.Close() //nolint:errcheck // test shutdown
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ssrv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown

	handler, endpoints := adminHandler(mgr.AdminHandler(), nil, ssrv)
	if !strings.Contains(endpoints, "/session/sessionz") {
		t.Errorf("endpoint banner %q misses /session/sessionz", endpoints)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	cl, err := session.Dial(ln.Addr().String(), session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck // test shutdown
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sess, err := cl.Open(ctx, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fence, err := sess.Acquire(ctx, keyName(0))
	if err != nil {
		t.Fatalf("acquire through session service: %v", err)
	}
	if fence == 0 {
		t.Error("grant carried fence 0")
	}

	resp, err := http.Get(srv.URL + "/session/sessionz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test read
	body, _ := io.ReadAll(resp.Body)
	var doc session.StatusDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/session/sessionz JSON: %v", err)
	}
	if doc.Sessions != 1 || len(doc.Keys) != 1 || doc.Keys[0].Holder != sess.ID() {
		t.Errorf("/session/sessionz = %+v, want 1 session holding %s", doc, keyName(0))
	}
	if err := sess.Release(keyName(0)); err != nil {
		t.Fatal(err)
	}

	mresp, err := http.Get(srv.URL + "/session/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close() //nolint:errcheck // test read
	mbody, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mbody), "session_grants_total 1") {
		t.Errorf("/session/metrics missing grant counter:\n%s", mbody)
	}
}

// TestRunSessionService is the run()-path smoke for -session: the node
// must come up with the session listener, run its workload through the
// Manager shape (forced by -session even at -keys 1), and tear down.
func TestRunSessionService(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real node")
	}
	err := run([]string{
		"-id", "0", "-peers", "127.0.0.1:0",
		"-session", "127.0.0.1:0",
		"-count", "2", "-hold", "1ms", "-think", "1ms", "-linger", "0s",
		"-treq", "0.002", "-tfwd", "0.002",
	})
	if err != nil {
		t.Fatalf("session service run: %v", err)
	}
}

// TestRunMultiKeyTCP is the end-to-end smoke: a single-node multi-key
// cluster over a real loopback TCP transport runs the round-robin
// workload to completion.
func TestRunMultiKeyTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real node")
	}
	err := run([]string{
		"-id", "0", "-peers", "127.0.0.1:0",
		"-keys", "3", "-count", "6",
		"-hold", "1ms", "-think", "1ms", "-linger", "0s",
		"-treq", "0.002", "-tfwd", "0.002",
	})
	if err != nil {
		t.Fatalf("multi-key run: %v", err)
	}
}

func TestRunAlgoList(t *testing.T) {
	if err := run([]string{"-algo", "list"}); err != nil {
		t.Fatalf("-algo list: %v", err)
	}
}

// Guard against the demo key names drifting between peers: they are the
// implicit wire contract of -keys.
func TestKeyNameStable(t *testing.T) {
	if keyName(0) != "lock-0" || keyName(7) != "lock-7" {
		t.Errorf("keyName drifted: %q %q", keyName(0), keyName(7))
	}
}
