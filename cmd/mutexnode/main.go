// Command mutexnode runs one live distributed-mutex node over TCP and
// drives a demo workload against it, printing each critical-section
// grant. Start N copies (one per node id) with the same -peers list and
// the same -algo; node 0 starts as the token holder / arbiter /
// coordinator of the chosen algorithm.
//
// Example, three nodes on one machine running Raymond's tree algorithm:
//
//	mutexnode -algo raymond -id 0 -http :8080 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	mutexnode -algo raymond -id 1 -http :8081 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	mutexnode -algo raymond -id 2 -http :8082 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// -algo selects any algorithm in internal/registry (core — the paper's
// arbiter protocol — plus the nine baselines); `-algo list` prints the
// catalog. Peers must agree on the algorithm: the wire envelope is
// tagged, and a mismatched peer is rejected with a logged error instead
// of a garbage decode.
//
// With -keys M (M > 1) the node runs the sharded multi-key lock service
// instead of a single mutex: M named lock keys (lock-0 … lock-M-1), one
// independent DME group per key, all multiplexed over the node's single
// TCP endpoint via key-tagged envelopes. Every peer must use the same
// -keys value. The demo workload round-robins its acquisitions over the
// keys, and the admin surface switches to the multi-key handler
// (aggregate /metrics with per-key labels, /statusz?key=K). With the
// default -keys 1 the node runs the original single-mutex protocol and
// stays wire-compatible with older key-less peers.
//
// Each node acquires the mutex -count times with -think pause between
// acquisitions, holds it for -hold, and prints a line per grant. With
// -count 0 the node only serves the protocol (a pure participant).
//
// With -http the node serves its admin endpoints: /metrics (Prometheus
// text), /statusz (JSON state snapshot including the current role),
// /healthz, and /debug/trace (recent protocol transitions as JSONL). On
// shutdown every node — including a -count 0 pure participant — prints a
// per-kind message summary with the messages-per-CS ratio.
//
// With -chaos the node's outbound traffic passes through a seeded fault
// injector (drops, duplicates, corruption, delay, reordering — see
// internal/faultnet for the spec grammar). When -http is also set, the
// injector is live-tunable through /debug/faults: query it for the
// current fault state, or mutate it (`?drop=0.2`, `?partition=0,1|2`,
// `?heal`, `?clear`) to stage failures against a running cluster.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/faultnet"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/reqtrace"
	"tokenarbiter/internal/session"
	"tokenarbiter/internal/telemetry"
	"tokenarbiter/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mutexnode:", err)
		os.Exit(1)
	}
}

// nodeConfig is the parsed and validated flag set; parseFlags builds it
// so the validation rules are testable without running a cluster.
type nodeConfig struct {
	id        int
	addrs     map[dme.NodeID]string
	n         int
	algo      string
	codec     string
	keys      int
	count     int
	hold      time.Duration
	think     time.Duration
	linger    time.Duration
	treq      float64
	tfwd      float64
	monitor   bool
	recovery  bool
	httpAddr  string
	session   string
	verbose   bool
	chaos     string
	flightrec string
	listAlgos bool
}

// parseFlags parses and validates the command line. With `-algo list`
// the returned config has listAlgos set and no further validation runs.
func parseFlags(args []string) (*nodeConfig, error) {
	fs := flag.NewFlagSet("mutexnode", flag.ContinueOnError)
	var (
		id        = fs.Int("id", 0, "this node's id (index into -peers)")
		peers     = fs.String("peers", "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002", "comma-separated peer addresses, one per node id")
		algoFlag  = fs.String("algo", "core", "algorithm to run (see -algo list); every peer must match")
		codec     = fs.String("codec", "auto", "wire codec to offer in connection handshakes: auto (binary fast path with gob fallback), binary (pinned), or gob (pinned fallback); peers negotiate per connection, so mixed settings interoperate")
		keys      = fs.Int("keys", 1, "number of named lock keys to serve (1: the classic single mutex; >1: the sharded multi-key service, every peer must match)")
		count     = fs.Int("count", 10, "critical sections to execute (0: serve only)")
		hold      = fs.Duration("hold", 50*time.Millisecond, "time to hold the mutex per acquisition")
		think     = fs.Duration("think", 100*time.Millisecond, "pause between acquisitions")
		linger    = fs.Duration("linger", 3*time.Second, "keep serving the protocol after finishing -count acquisitions (baselines have no recovery: an exiting node strands peers that still need the token)")
		treq      = fs.Float64("treq", 0.05, "core: request collection phase (seconds)")
		tfwd      = fs.Float64("tfwd", 0.05, "core: request forwarding phase (seconds)")
		monitor   = fs.Bool("monitor", false, "core: enable the starvation-free monitor variant")
		recovery  = fs.Bool("recovery", true, "core: enable the §6 failure recovery protocol")
		httpAddr  = fs.String("http", "", "admin endpoint address (e.g. :8080) serving /metrics, /statusz, /healthz, /debug/trace; empty disables")
		sessAddr  = fs.String("session", "", "serve the client session protocol (TTL leases, wait queues, watches) on this address (e.g. :7100); forces the multi-key service shape, so every peer must run with -keys > 1 or -session as well")
		verbose   = fs.Bool("v", false, "log protocol transitions (slog, stderr; core only)")
		chaos     = fs.String("chaos", "", "inject faults into this node's outbound traffic, e.g. drop=0.05,dup=0.02,corrupt=0.01,delay=2ms,jitter=1ms,reorder=0.05,seed=7; live-tunable via /debug/faults when -http is set")
		flightrec = fs.String("flightrec", "", "write a flight-recorder capture (JSONL: every envelope sent/received plus the lock lifecycle) to this file; re-execute it with `mutexsim replay`")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	if *algoFlag == "list" {
		return &nodeConfig{listAlgos: true}, nil
	}
	entry, ok := registry.Lookup(*algoFlag)
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q (have %s)",
			*algoFlag, strings.Join(registry.Names(), ", "))
	}

	addrList := strings.Split(*peers, ",")
	n := len(addrList)
	if *id < 0 || *id >= n {
		return nil, fmt.Errorf("id %d outside peer list of %d", *id, n)
	}
	if *keys < 1 {
		return nil, fmt.Errorf("-keys %d: need at least one lock key", *keys)
	}
	switch *codec {
	case "", "auto", "binary", "gob":
	default:
		return nil, fmt.Errorf("-codec %q: want auto, binary, or gob", *codec)
	}
	addrs := make(map[dme.NodeID]string, n)
	for i, a := range addrList {
		addrs[i] = strings.TrimSpace(a)
	}

	return &nodeConfig{
		id: *id, addrs: addrs, n: n,
		algo: entry.Name, codec: *codec, keys: *keys,
		count: *count, hold: *hold, think: *think, linger: *linger,
		treq: *treq, tfwd: *tfwd, monitor: *monitor, recovery: *recovery,
		httpAddr: *httpAddr, session: *sessAddr, verbose: *verbose, chaos: *chaos,
		flightrec: *flightrec,
	}, nil
}

// buildFactory assembles the per-node (or per-key) protocol factory. The
// paper's algorithm keeps its full option surface (variant, recovery,
// phase tuning); the baselines build from the registry.
func buildFactory(cfg *nodeConfig) (live.Factory, error) {
	if cfg.algo == registry.Core {
		opts := core.Options{
			Treq:              cfg.treq,
			Tfwd:              cfg.tfwd,
			Monitor:           cfg.monitor,
			RetransmitTimeout: 2,
		}
		if cfg.monitor {
			opts.MonitorFlushTimeout = 5
		}
		if cfg.recovery {
			opts.Recovery = core.RecoveryOptions{
				Enabled:        true,
				TokenTimeout:   3,
				RoundTimeout:   1,
				ArbiterTimeout: 10,
				ProbeTimeout:   1,
			}
		}
		return registry.CoreLiveFactory(opts), nil
	}
	return registry.NewLiveFactory(cfg.algo, nil)
}

// adminHandler composes the node's admin surface with the optional
// fault-injector control endpoint and session-layer status, returning
// the handler and the endpoint list for the startup banner.
func adminHandler(admin http.Handler, inj *faultnet.Injector, ssrv *session.Server) (http.Handler, string) {
	endpoints := "/metrics /statusz /healthz /debug/trace /debug/requests"
	if inj == nil && ssrv == nil {
		return admin, endpoints
	}
	mux := http.NewServeMux()
	mux.Handle("/", admin)
	if inj != nil {
		mux.Handle("/debug/faults", inj.Handler())
		endpoints += " /debug/faults"
	}
	if ssrv != nil {
		mux.Handle("/session/", http.StripPrefix("/session", ssrv.Handler()))
		endpoints += " /session/sessionz /session/metrics"
	}
	return mux, endpoints
}

// keyName names the demo workload's lock keys: lock-0 … lock-M-1. Every
// peer derives the same names from its own -keys value.
func keyName(i int) string { return fmt.Sprintf("lock-%d", i) }

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	if cfg.listAlgos {
		for _, e := range registry.Entries() {
			fmt.Printf("  %-16s %s\n", e.Name, e.Description)
		}
		return nil
	}

	var logger *slog.Logger
	if cfg.verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	factory, err := buildFactory(cfg)
	if err != nil {
		return err
	}

	tcp, err := transport.NewTCPOpt(cfg.id, cfg.addrs, transport.TCPOptions{
		Algo:  cfg.algo,
		Codec: cfg.codec,
		OnWireError: func(err error) {
			fmt.Fprintln(os.Stderr, "mutexnode:", err)
		},
	})
	if err != nil {
		return err
	}
	// One registry serves the protocol metrics and the transport tallies;
	// the counting layer is on by default so every node can report its
	// message volume (and the /metrics endpoint its per-kind counters).
	// With -chaos, the fault injector slots in below it — innermost, so
	// injected faults are indistinguishable from network behavior and the
	// counters still report what the protocol attempted to send. With
	// -keys > 1 the whole chain sits below the Manager's key demux, so
	// both layers observe the merged multi-key stream.
	reg := telemetry.NewRegistry()
	var inj *faultnet.Injector
	if cfg.chaos != "" {
		spec, err := faultnet.ParseSpec(cfg.chaos)
		if err != nil {
			_ = tcp.Close()
			return fmt.Errorf("-chaos: %w", err)
		}
		inj = faultnet.New(faultnet.Options{
			Seed:   spec.Seed,
			Faults: spec.Faults,
			Algo:   cfg.algo,
			OnFault: func(err error) {
				fmt.Fprintln(os.Stderr, "mutexnode: chaos:", err)
			},
		})
		inj.RegisterMetrics(reg)
	}
	// The flight recorder sits outermost (it captures what the protocol
	// attempted, faults included but below it), followed by counting, with
	// the injector innermost as before.
	var frec *reqtrace.Recorder
	if cfg.flightrec != "" {
		frec, err = reqtrace.CreateRecorder(cfg.flightrec, cfg.algo, cfg.n)
		if err != nil {
			_ = tcp.Close()
			return err
		}
		defer frec.Close() //nolint:errcheck // shutdown path
	}
	// Request tracing is always on for this demo binary: the collector is
	// cheap, and it lights up /debug/requests plus the trace-ID exemplars
	// on the wait/hold histograms.
	tracer := reqtrace.NewCollector(reqtrace.DefaultDepth)
	tr := transport.Chain(tcp, frec.Middleware(), transport.CountingMW(reg), faultMW(inj))
	ct, _ := transport.Find[*transport.Counting](tr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The two service shapes: the classic single mutex (one live node,
	// key-less wire envelopes, compatible with older peers) or the
	// sharded multi-key service (one DME group per key over the same
	// endpoint). -session needs a Manager behind it (the session layer's
	// Backend is keyed), so it forces the multi-key shape even at -keys 1.
	var admin http.Handler
	var workload func() error
	var summary func()
	var ssrv *session.Server
	if cfg.keys == 1 && cfg.session == "" {
		node, err := live.NewNode(live.Config{
			ID: cfg.id, N: cfg.n, Transport: tr, Factory: factory, Algo: cfg.algo,
			Logger: logger, Metrics: reg, Tracer: tracer, FlightRec: frec,
		})
		if err != nil {
			_ = tcp.Close()
			return err
		}
		defer node.Close() //nolint:errcheck // shutdown path
		admin = node.AdminHandler()
		workload = func() error { return singleKeyWorkload(ctx, cfg, node) }
		summary = func() { printSummary(cfg.id, cfg.algo, node, ct, tcp, inj) }
	} else {
		mgr, err := live.NewManager(live.ManagerConfig{
			ID: cfg.id, N: cfg.n, Transport: tr, Factory: factory, Algo: cfg.algo,
			Logger: logger, Metrics: reg, Tracer: tracer, FlightRec: frec,
		})
		if err != nil {
			_ = tcp.Close()
			return err
		}
		defer mgr.Close() //nolint:errcheck // shutdown path
		admin = mgr.AdminHandler()
		workload = func() error { return multiKeyWorkload(ctx, cfg, mgr) }
		summary = func() { printManagerSummary(cfg, mgr, ct, tcp, inj) }
		if cfg.session != "" {
			// The session server shares the node's registry, so the main
			// /metrics exposes the session_* counters alongside the
			// protocol's; /session/metrics serves the same registry.
			ssrv, err = session.NewServer(session.Config{
				Backend: mgr, Metrics: reg, Logger: logger,
			})
			if err != nil {
				return err
			}
			defer ssrv.Close() //nolint:errcheck // shutdown path
			sln, err := net.Listen("tcp", cfg.session)
			if err != nil {
				return err
			}
			go ssrv.Serve(sln) //nolint:errcheck // returns ErrServerClosed on shutdown
			fmt.Printf("node %d: session service on %s (TTL leases, wait queues, watches)\n",
				cfg.id, sln.Addr())
		}
	}

	if cfg.httpAddr != "" {
		handler, endpoints := adminHandler(admin, inj, ssrv)
		srv := &http.Server{Addr: cfg.httpAddr, Handler: handler}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "mutexnode: admin server:", err)
			}
		}()
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = srv.Shutdown(shCtx)
		}()
		fmt.Printf("node %d: admin endpoints on %s (%s)\n", cfg.id, cfg.httpAddr, endpoints)
	}
	defer summary()
	if frec != nil {
		defer func() {
			records, dropped := frec.Totals()
			fmt.Printf("node %d: flight recorder: %d records (%d dropped) -> %s\n",
				cfg.id, records, dropped, cfg.flightrec)
		}()
	}

	switch {
	case cfg.algo == registry.Core && cfg.keys > 1:
		fmt.Printf("node %d/%d listening on %s (arbiter protocol, %d lock keys: treq=%.3fs tfwd=%.3fs monitor=%v recovery=%v)\n",
			cfg.id, cfg.n, cfg.addrs[cfg.id], cfg.keys, cfg.treq, cfg.tfwd, cfg.monitor, cfg.recovery)
	case cfg.algo == registry.Core:
		fmt.Printf("node %d/%d listening on %s (arbiter protocol: treq=%.3fs tfwd=%.3fs monitor=%v recovery=%v)\n",
			cfg.id, cfg.n, cfg.addrs[cfg.id], cfg.treq, cfg.tfwd, cfg.monitor, cfg.recovery)
	default:
		fmt.Printf("node %d/%d listening on %s (algorithm: %s, keys: %d)\n",
			cfg.id, cfg.n, cfg.addrs[cfg.id], cfg.algo, cfg.keys)
	}

	if cfg.count == 0 {
		<-ctx.Done()
		return nil
	}
	if err := workload(); err != nil {
		return err
	}
	if cfg.linger > 0 {
		select {
		case <-time.After(cfg.linger):
		case <-ctx.Done():
		}
	}
	return nil
}

// singleKeyWorkload is the classic demo loop: acquire, hold, release,
// think, -count times.
func singleKeyWorkload(ctx context.Context, cfg *nodeConfig, node *live.Node) error {
	for i := 1; i <= cfg.count; i++ {
		if err := node.Lock(ctx); err != nil {
			return fmt.Errorf("lock %d: %w", i, err)
		}
		fmt.Printf("node %d: acquired CS #%d at %s\n", cfg.id, i, time.Now().Format("15:04:05.000"))
		select {
		case <-time.After(cfg.hold):
		case <-ctx.Done():
		}
		node.Unlock()
		select {
		case <-time.After(cfg.think):
		case <-ctx.Done():
			return nil
		}
	}
	return nil
}

// multiKeyWorkload round-robins -count acquisitions over the node's lock
// keys (offset by the node id so the keys see staggered traffic from
// every node), printing each grant with its per-key fencing token.
func multiKeyWorkload(ctx context.Context, cfg *nodeConfig, mgr *live.Manager) error {
	for i := 1; i <= cfg.count; i++ {
		key := keyName((cfg.id + i) % cfg.keys)
		fence, err := mgr.LockFence(ctx, key)
		if err != nil {
			return fmt.Errorf("lock %d (%s): %w", i, key, err)
		}
		fmt.Printf("node %d: acquired CS #%d key=%s fence=%d at %s\n",
			cfg.id, i, key, fence, time.Now().Format("15:04:05.000"))
		select {
		case <-time.After(cfg.hold):
		case <-ctx.Done():
		}
		mgr.Unlock(key)
		select {
		case <-time.After(cfg.think):
		case <-ctx.Done():
			return nil
		}
	}
	return nil
}

// faultMW adapts an optional injector to a Middleware; Chain skips the
// nil when -chaos is off.
func faultMW(inj *faultnet.Injector) transport.Middleware {
	if inj == nil {
		return nil
	}
	return inj.Middleware()
}

// printSummary reports the node's lifetime protocol traffic: grants,
// per-kind sent/received counts, payload units, wire bytes, and the
// local messages-per-CS ratio (which under a symmetric workload matches
// the cluster-wide figure the simulation reports).
func printSummary(id int, algo string, node *live.Node, ct *transport.Counting, tcp *transport.TCPTransport, inj *faultnet.Injector) {
	granted, released := node.Stats()
	fmt.Printf("node %d: done (algorithm %s, %d granted, %d released)\n", id, algo, granted, released)
	printTraffic(id, node.Metrics(), ct)
	printWireAndChaos(id, tcp, inj)
	printKinds(id, ct)
	printPerCS(id, granted, ct)
}

// printManagerSummary is the multi-key shutdown report: aggregate grants
// and traffic over the shared endpoint, then one row per lock key from
// the key's own registry.
func printManagerSummary(cfg *nodeConfig, mgr *live.Manager, ct *transport.Counting, tcp *transport.TCPTransport, inj *faultnet.Injector) {
	granted, released := mgr.Stats()
	fmt.Printf("node %d: done (algorithm %s, %d keys, %d granted, %d released)\n",
		cfg.id, cfg.algo, len(mgr.Keys()), granted, released)
	printTraffic(cfg.id, mgr.Metrics(), ct)
	printWireAndChaos(cfg.id, tcp, inj)
	printKinds(cfg.id, ct)
	for _, ks := range mgr.KeyStats() {
		fmt.Printf("node %d:   key %-12s shard=%-3d granted=%-5d sent=%-6d received=%-6d wait-p99=%.1fms\n",
			cfg.id, ks.Key, ks.Shard, ks.Granted, ks.MsgsSent, ks.MsgsRecv, ks.WaitP99*1000)
	}
	printPerCS(cfg.id, granted, ct)
}

func printTraffic(id int, reg *telemetry.Registry, ct *transport.Counting) {
	sent, received := ct.Totals()
	sentU, recvU := ct.UnitTotals()
	fmt.Printf("node %d: messages sent=%d received=%d units sent=%d received=%d",
		id, sent, received, sentU, recvU)
	if snap := reg.Snapshot(); snap.Counters["transport_wire_bytes_sent_total"] > 0 {
		fmt.Printf(" wire bytes sent=%d received=%d",
			snap.Counters["transport_wire_bytes_sent_total"],
			snap.Counters["transport_wire_bytes_received_total"])
	}
	fmt.Println()
}

func printWireAndChaos(id int, tcp *transport.TCPTransport, inj *faultnet.Injector) {
	if mism, dec := tcp.WireErrors(); mism > 0 || dec > 0 {
		fmt.Printf("node %d: WIRE ERRORS: %d algorithm/version mismatches, %d undecodable payloads (check every peer's -algo)\n",
			id, mism, dec)
	}
	if inj != nil {
		c := inj.Counters()
		fmt.Printf("node %d: chaos: dropped=%d duplicated=%d corrupted=%d delayed=%d reordered=%d partition-dropped=%d\n",
			id, c.Drops, c.Dups, c.Corruptions, c.Delayed, c.Reordered, c.PartitionDrops)
	}
}

func printKinds(id int, ct *transport.Counting) {
	byKind := ct.SentByKind()
	inKind := ct.ReceivedByKind()
	kinds := make(map[string]struct{}, len(byKind)+len(inKind))
	for k := range byKind {
		kinds[k] = struct{}{}
	}
	for k := range inKind {
		kinds[k] = struct{}{}
	}
	sorted := make([]string, 0, len(kinds))
	for k := range kinds {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		fmt.Printf("node %d:   %-14s sent=%-6d received=%d\n", id, k, byKind[k], inKind[k])
	}
}

func printPerCS(id int, granted uint64, ct *transport.Counting) {
	if granted == 0 {
		return
	}
	sent, received := ct.Totals()
	fmt.Printf("node %d: messages per CS: %.2f sent, %.2f incl. received\n",
		id, float64(sent)/float64(granted),
		float64(sent+received)/float64(granted))
}
