// Command mutexnode runs one live distributed-mutex node over TCP and
// drives a demo workload against it, printing each critical-section
// grant. Start N copies (one per node id) with the same -peers list and
// the same -algo; node 0 starts as the token holder / arbiter /
// coordinator of the chosen algorithm.
//
// Example, three nodes on one machine running Raymond's tree algorithm:
//
//	mutexnode -algo raymond -id 0 -http :8080 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	mutexnode -algo raymond -id 1 -http :8081 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	mutexnode -algo raymond -id 2 -http :8082 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// -algo selects any algorithm in internal/registry (core — the paper's
// arbiter protocol — plus the nine baselines); `-algo list` prints the
// catalog. Peers must agree on the algorithm: the wire envelope is
// tagged, and a mismatched peer is rejected with a logged error instead
// of a garbage decode.
//
// Each node acquires the mutex -count times with -think pause between
// acquisitions, holds it for -hold, and prints a line per grant. With
// -count 0 the node only serves the protocol (a pure participant).
//
// With -http the node serves its admin endpoints: /metrics (Prometheus
// text), /statusz (JSON state snapshot including the current role),
// /healthz, and /debug/trace (recent protocol transitions as JSONL). On
// shutdown every node — including a -count 0 pure participant — prints a
// per-kind message summary with the messages-per-CS ratio.
//
// With -chaos the node's outbound traffic passes through a seeded fault
// injector (drops, duplicates, corruption, delay, reordering — see
// internal/faultnet for the spec grammar). When -http is also set, the
// injector is live-tunable through /debug/faults: query it for the
// current fault state, or mutate it (`?drop=0.2`, `?partition=0,1|2`,
// `?heal`, `?clear`) to stage failures against a running cluster.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/faultnet"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/telemetry"
	"tokenarbiter/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mutexnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", 0, "this node's id (index into -peers)")
		peers    = flag.String("peers", "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002", "comma-separated peer addresses, one per node id")
		algoFlag = flag.String("algo", "core", "algorithm to run (see -algo list); every peer must match")
		count    = flag.Int("count", 10, "critical sections to execute (0: serve only)")
		hold     = flag.Duration("hold", 50*time.Millisecond, "time to hold the mutex per acquisition")
		think    = flag.Duration("think", 100*time.Millisecond, "pause between acquisitions")
		linger   = flag.Duration("linger", 3*time.Second, "keep serving the protocol after finishing -count acquisitions (baselines have no recovery: an exiting node strands peers that still need the token)")
		treq     = flag.Float64("treq", 0.05, "core: request collection phase (seconds)")
		tfwd     = flag.Float64("tfwd", 0.05, "core: request forwarding phase (seconds)")
		monitor  = flag.Bool("monitor", false, "core: enable the starvation-free monitor variant")
		recovery = flag.Bool("recovery", true, "core: enable the §6 failure recovery protocol")
		httpAddr = flag.String("http", "", "admin endpoint address (e.g. :8080) serving /metrics, /statusz, /healthz, /debug/trace; empty disables")
		verbose  = flag.Bool("v", false, "log protocol transitions (slog, stderr; core only)")
		chaos    = flag.String("chaos", "", "inject faults into this node's outbound traffic, e.g. drop=0.05,dup=0.02,corrupt=0.01,delay=2ms,jitter=1ms,reorder=0.05,seed=7; live-tunable via /debug/faults when -http is set")
	)
	flag.Parse()

	if *algoFlag == "list" {
		for _, e := range registry.Entries() {
			fmt.Printf("  %-16s %s\n", e.Name, e.Description)
		}
		return nil
	}
	entry, ok := registry.Lookup(*algoFlag)
	if !ok {
		return fmt.Errorf("unknown algorithm %q (have %s)",
			*algoFlag, strings.Join(registry.Names(), ", "))
	}
	algo := entry.Name

	addrList := strings.Split(*peers, ",")
	n := len(addrList)
	if *id < 0 || *id >= n {
		return fmt.Errorf("id %d outside peer list of %d", *id, n)
	}
	addrs := make(map[dme.NodeID]string, n)
	for i, a := range addrList {
		addrs[i] = strings.TrimSpace(a)
	}

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	// The paper's algorithm keeps its full option surface (variant,
	// recovery, phase tuning); the baselines build from the registry.
	var factory live.Factory
	if algo == registry.Core {
		opts := core.Options{
			Treq:              *treq,
			Tfwd:              *tfwd,
			Monitor:           *monitor,
			RetransmitTimeout: 2,
		}
		if *monitor {
			opts.MonitorFlushTimeout = 5
		}
		if *recovery {
			opts.Recovery = core.RecoveryOptions{
				Enabled:        true,
				TokenTimeout:   3,
				RoundTimeout:   1,
				ArbiterTimeout: 10,
				ProbeTimeout:   1,
			}
		}
		factory = registry.CoreLiveFactory(opts)
	} else {
		var err error
		factory, err = registry.NewLiveFactory(algo, nil)
		if err != nil {
			return err
		}
	}

	tcp, err := transport.NewTCPOpt(*id, addrs, transport.TCPOptions{
		Algo: algo,
		OnWireError: func(err error) {
			fmt.Fprintln(os.Stderr, "mutexnode:", err)
		},
	})
	if err != nil {
		return err
	}
	// One registry serves the protocol metrics and the transport tallies;
	// the counting layer is on by default so every node can report its
	// message volume (and the /metrics endpoint its per-kind counters).
	// With -chaos, the fault injector slots in below it — innermost, so
	// injected faults are indistinguishable from network behavior and the
	// counters still report what the protocol attempted to send.
	reg := telemetry.NewRegistry()
	var inj *faultnet.Injector
	if *chaos != "" {
		spec, err := faultnet.ParseSpec(*chaos)
		if err != nil {
			_ = tcp.Close()
			return fmt.Errorf("-chaos: %w", err)
		}
		inj = faultnet.New(faultnet.Options{
			Seed:   spec.Seed,
			Faults: spec.Faults,
			Algo:   algo,
			OnFault: func(err error) {
				fmt.Fprintln(os.Stderr, "mutexnode: chaos:", err)
			},
		})
		inj.RegisterMetrics(reg)
	}
	tr := transport.Chain(tcp, transport.CountingMW(reg), faultMW(inj))
	ct, _ := transport.Find[*transport.Counting](tr)
	node, err := live.NewNode(live.Config{
		ID: *id, N: n, Transport: tr, Factory: factory, Algo: algo,
		Logger: logger, Metrics: reg,
	})
	if err != nil {
		_ = tcp.Close()
		return err
	}
	defer node.Close() //nolint:errcheck // shutdown path

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *httpAddr != "" {
		handler := http.Handler(node.AdminHandler())
		endpoints := "/metrics /statusz /healthz /debug/trace"
		if inj != nil {
			mux := http.NewServeMux()
			mux.Handle("/", node.AdminHandler())
			mux.Handle("/debug/faults", inj.Handler())
			handler = mux
			endpoints += " /debug/faults"
		}
		srv := &http.Server{Addr: *httpAddr, Handler: handler}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "mutexnode: admin server:", err)
			}
		}()
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = srv.Shutdown(shCtx)
		}()
		fmt.Printf("node %d: admin endpoints on %s (%s)\n", *id, *httpAddr, endpoints)
	}
	defer printSummary(*id, algo, node, ct, tcp, inj)

	if algo == registry.Core {
		fmt.Printf("node %d/%d listening on %s (arbiter protocol: treq=%.3fs tfwd=%.3fs monitor=%v recovery=%v)\n",
			*id, n, addrs[*id], *treq, *tfwd, *monitor, *recovery)
	} else {
		fmt.Printf("node %d/%d listening on %s (algorithm: %s)\n", *id, n, addrs[*id], algo)
	}

	if *count == 0 {
		<-ctx.Done()
		return nil
	}

	for i := 1; i <= *count; i++ {
		if err := node.Lock(ctx); err != nil {
			return fmt.Errorf("lock %d: %w", i, err)
		}
		fmt.Printf("node %d: acquired CS #%d at %s\n", *id, i, time.Now().Format("15:04:05.000"))
		select {
		case <-time.After(*hold):
		case <-ctx.Done():
		}
		node.Unlock()
		select {
		case <-time.After(*think):
		case <-ctx.Done():
			return nil
		}
	}
	if *linger > 0 {
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
		}
	}
	return nil
}

// printSummary reports the node's lifetime protocol traffic: grants,
// per-kind sent/received counts, payload units, wire bytes, and the
// local messages-per-CS ratio (which under a symmetric workload matches
// the cluster-wide figure the simulation reports).
// faultMW adapts an optional injector to a Middleware; Chain skips the
// nil when -chaos is off.
func faultMW(inj *faultnet.Injector) transport.Middleware {
	if inj == nil {
		return nil
	}
	return inj.Middleware()
}

func printSummary(id int, algo string, node *live.Node, ct *transport.Counting, tcp *transport.TCPTransport, inj *faultnet.Injector) {
	granted, released := node.Stats()
	sent, received := ct.Totals()
	sentU, recvU := ct.UnitTotals()
	fmt.Printf("node %d: done (algorithm %s, %d granted, %d released)\n", id, algo, granted, released)
	fmt.Printf("node %d: messages sent=%d received=%d units sent=%d received=%d",
		id, sent, received, sentU, recvU)
	if snap := node.Metrics().Snapshot(); snap.Counters["transport_wire_bytes_sent_total"] > 0 {
		fmt.Printf(" wire bytes sent=%d received=%d",
			snap.Counters["transport_wire_bytes_sent_total"],
			snap.Counters["transport_wire_bytes_received_total"])
	}
	fmt.Println()
	if mism, dec := tcp.WireErrors(); mism > 0 || dec > 0 {
		fmt.Printf("node %d: WIRE ERRORS: %d algorithm/version mismatches, %d undecodable payloads (check every peer's -algo)\n",
			id, mism, dec)
	}
	if inj != nil {
		c := inj.Counters()
		fmt.Printf("node %d: chaos: dropped=%d duplicated=%d corrupted=%d delayed=%d reordered=%d partition-dropped=%d\n",
			id, c.Drops, c.Dups, c.Corruptions, c.Delayed, c.Reordered, c.PartitionDrops)
	}
	byKind := ct.SentByKind()
	inKind := ct.ReceivedByKind()
	kinds := make(map[string]struct{}, len(byKind)+len(inKind))
	for k := range byKind {
		kinds[k] = struct{}{}
	}
	for k := range inKind {
		kinds[k] = struct{}{}
	}
	sorted := make([]string, 0, len(kinds))
	for k := range kinds {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		fmt.Printf("node %d:   %-14s sent=%-6d received=%d\n", id, k, byKind[k], inKind[k])
	}
	if granted > 0 {
		fmt.Printf("node %d: messages per CS: %.2f sent, %.2f incl. received\n",
			id, float64(sent)/float64(granted),
			float64(sent+received)/float64(granted))
	}
}
