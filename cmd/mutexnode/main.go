// Command mutexnode runs one live arbiter-mutex node over TCP and drives
// a demo workload against it, printing each critical-section grant. Start
// N copies (one per node id) with the same -peers list; node 0 mints the
// initial token.
//
// Example, three nodes on one machine:
//
//	mutexnode -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	mutexnode -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	mutexnode -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// Each node acquires the mutex -count times with -think pause between
// acquisitions, holds it for -hold, and prints a line per grant. With
// -count 0 the node only serves the protocol (a pure participant).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mutexnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", 0, "this node's id (index into -peers)")
		peers    = flag.String("peers", "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002", "comma-separated peer addresses, one per node id")
		count    = flag.Int("count", 10, "critical sections to execute (0: serve only)")
		hold     = flag.Duration("hold", 50*time.Millisecond, "time to hold the mutex per acquisition")
		think    = flag.Duration("think", 100*time.Millisecond, "pause between acquisitions")
		treq     = flag.Float64("treq", 0.05, "request collection phase (seconds)")
		tfwd     = flag.Float64("tfwd", 0.05, "request forwarding phase (seconds)")
		monitor  = flag.Bool("monitor", false, "enable the starvation-free monitor variant")
		recovery = flag.Bool("recovery", true, "enable the §6 failure recovery protocol")
		verbose  = flag.Bool("v", false, "log protocol transitions (slog, stderr)")
	)
	flag.Parse()

	addrList := strings.Split(*peers, ",")
	n := len(addrList)
	if *id < 0 || *id >= n {
		return fmt.Errorf("id %d outside peer list of %d", *id, n)
	}
	addrs := make(map[dme.NodeID]string, n)
	for i, a := range addrList {
		addrs[i] = strings.TrimSpace(a)
	}

	opts := core.Options{
		Treq:              *treq,
		Tfwd:              *tfwd,
		Monitor:           *monitor,
		RetransmitTimeout: 2,
	}
	if *monitor {
		opts.MonitorFlushTimeout = 5
	}
	if *recovery {
		opts.Recovery = core.RecoveryOptions{
			Enabled:        true,
			TokenTimeout:   3,
			RoundTimeout:   1,
			ArbiterTimeout: 10,
			ProbeTimeout:   1,
		}
	}

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	tr, err := transport.NewTCP(*id, addrs)
	if err != nil {
		return err
	}
	node, err := live.NewNode(live.Config{ID: *id, N: n, Transport: tr, Options: opts, Logger: logger})
	if err != nil {
		_ = tr.Close()
		return err
	}
	defer node.Close() //nolint:errcheck // shutdown path

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("node %d/%d listening on %s (arbiter protocol: treq=%.3fs tfwd=%.3fs monitor=%v recovery=%v)\n",
		*id, n, addrs[*id], *treq, *tfwd, *monitor, *recovery)

	if *count == 0 {
		<-ctx.Done()
		return nil
	}

	for i := 1; i <= *count; i++ {
		if err := node.Lock(ctx); err != nil {
			return fmt.Errorf("lock %d: %w", i, err)
		}
		fmt.Printf("node %d: acquired CS #%d at %s\n", *id, i, time.Now().Format("15:04:05.000"))
		select {
		case <-time.After(*hold):
		case <-ctx.Done():
		}
		node.Unlock()
		select {
		case <-time.After(*think):
		case <-ctx.Done():
			return nil
		}
	}
	granted, released := node.Stats()
	fmt.Printf("node %d: done (%d granted, %d released)\n", *id, granted, released)
	return nil
}
