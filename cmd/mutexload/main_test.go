package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-nodes", "0"}); err == nil {
		t.Error("zero nodes accepted")
	}
	if err := run([]string{"-transport", "carrier-pigeon", "-duration", "10ms"}); err == nil {
		t.Error("unknown transport accepted")
	}
	if err := run([]string{"-algo", "paxos-deluxe", "-duration", "10ms"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-algo", "raymond", "-loss", "0.1", "-duration", "10ms"}); err == nil {
		t.Error("loss accepted for a baseline without recovery")
	}
	if err := run([]string{"-keys", "0", "-duration", "10ms"}); err == nil {
		t.Error("zero keys accepted")
	}
	if err := run([]string{"-workers", "0", "-duration", "10ms"}); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestRunShortMemLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-nodes", "3", "-duration", "500ms", "-rate", "100", "-hold", "200us"})
	if err != nil {
		t.Fatalf("mem load: %v", err)
	}
}

func TestRunShortTCPLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-transport", "tcp", "-nodes", "2", "-duration", "500ms", "-rate", "50"})
	if err != nil {
		t.Fatalf("tcp load: %v", err)
	}
}

func TestRunShortBaselineLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-algo", "raymond", "-nodes", "3", "-duration", "500ms", "-rate", "100", "-hold", "200us"})
	if err != nil {
		t.Fatalf("raymond mem load: %v", err)
	}
}

func TestRunShortMultiKeyLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-nodes", "3", "-keys", "4", "-workers", "4", "-rate", "0",
		"-duration", "500ms", "-hold", "500us"})
	if err != nil {
		t.Fatalf("multi-key mem load: %v", err)
	}
}

func TestRunWithLossAndMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-nodes", "3", "-duration", "600ms", "-rate", "80", "-loss", "0.01", "-monitor"})
	if err != nil {
		t.Fatalf("lossy monitored load: %v", err)
	}
}
