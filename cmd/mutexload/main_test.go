package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-nodes", "0"}); err == nil {
		t.Error("zero nodes accepted")
	}
	if err := run([]string{"-transport", "carrier-pigeon", "-duration", "10ms"}); err == nil {
		t.Error("unknown transport accepted")
	}
	if err := run([]string{"-algo", "paxos-deluxe", "-duration", "10ms"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-algo", "raymond", "-loss", "0.1", "-duration", "10ms"}); err == nil {
		t.Error("loss accepted for a baseline without recovery")
	}
	if err := run([]string{"-keys", "0", "-duration", "10ms"}); err == nil {
		t.Error("zero keys accepted")
	}
	if err := run([]string{"-workers", "0", "-duration", "10ms"}); err == nil {
		t.Error("zero workers accepted")
	}
	if err := run([]string{"-sessions", "-1", "-duration", "10ms"}); err == nil {
		t.Error("negative sessions accepted")
	}
	if err := run([]string{"-sessions", "10", "-conns", "0", "-duration", "10ms"}); err == nil {
		t.Error("session mode without connections accepted")
	}
}

// TestRunShortSessionLoad is the session-mode smoke: a small cohort of
// leased sessions against a 3-node mem cluster, checker on.
func TestRunShortSessionLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-sessions", "120", "-conns", "4", "-nodes", "3", "-keys", "2",
		"-duration", "700ms", "-think", "2ms", "-hold", "200us", "-wait", "500ms",
		"-slowest", "0", "-pernode=false"})
	if err != nil {
		t.Fatalf("session load: %v", err)
	}
}

// TestRunTenThousandSessions is the scale acceptance: the driver must
// sustain 10,000 concurrent TTL-leased sessions against a 3-node
// loopback-TCP cluster with admission control engaged (the per-key
// waiter bound refuses the excess and the drivers back off), and the
// cluster-wide exclusion/fencing checker must stay clean. Too heavy for
// the race detector — CI runs it in the chaos-soak job without -race.
func TestRunTenThousandSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("opens 10k sessions against a real TCP cluster")
	}
	err := run([]string{"-transport", "tcp", "-sessions", "10000", "-nodes", "3",
		"-keys", "4", "-duration", "3s", "-think", "200ms", "-hold", "200us",
		"-wait", "1s", "-slowest", "0", "-pernode=false"})
	if err != nil {
		t.Fatalf("10k session load: %v", err)
	}
}

func TestRunShortMemLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-nodes", "3", "-duration", "500ms", "-rate", "100", "-hold", "200us"})
	if err != nil {
		t.Fatalf("mem load: %v", err)
	}
}

func TestRunShortTCPLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-transport", "tcp", "-nodes", "2", "-duration", "500ms", "-rate", "50"})
	if err != nil {
		t.Fatalf("tcp load: %v", err)
	}
}

func TestRunShortBaselineLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-algo", "raymond", "-nodes", "3", "-duration", "500ms", "-rate", "100", "-hold", "200us"})
	if err != nil {
		t.Fatalf("raymond mem load: %v", err)
	}
}

func TestRunShortMultiKeyLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-nodes", "3", "-keys", "4", "-workers", "4", "-rate", "0",
		"-duration", "500ms", "-hold", "500us"})
	if err != nil {
		t.Fatalf("multi-key mem load: %v", err)
	}
}

func TestRunWithLossAndMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real cluster")
	}
	err := run([]string{"-nodes", "3", "-duration", "600ms", "-rate", "80", "-loss", "0.01", "-monitor"})
	if err != nil {
		t.Fatalf("lossy monitored load: %v", err)
	}
}
