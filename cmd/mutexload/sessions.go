package main

// Session-layer load mode (-sessions N): instead of driving Manager.Lock
// directly from worker goroutines, every node fronts its Manager with an
// internal/session Server on a loopback-TCP listener, and the driver
// opens N TTL-leased sessions spread round-robin across a small pool of
// shared client connections per node — the many-client shape the session
// layer exists for: tens of thousands of leases multiplexed onto one DME
// participant per key per node.
//
// Admission control is part of the workload, not a failure: opens beyond
// -maxsessions and acquires beyond -maxwaiters are refused with
// CodeOverloaded, and the driver backs off exponentially and retries —
// the refusals and backoffs are reported in the session summary. Every
// grant passes through a shared per-key checker that asserts mutual
// exclusion and fencing-token monotonicity across the whole cluster; a
// violation fails the run.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tokenarbiter/internal/live"
	"tokenarbiter/internal/session"
	"tokenarbiter/internal/stats"
)

// sessionLoadConfig carries the session-mode knobs from the flag set.
type sessionLoadConfig struct {
	sessions    int           // concurrent sessions to sustain
	conns       int           // shared client connections per node
	ttl         time.Duration // lease TTL (auto-keepalive renews)
	wait        time.Duration // server-side acquire wait bound
	think       time.Duration // per-session pause between operations
	hold        time.Duration // critical-section hold time
	maxSessions int           // per-node admission bound (0 = unlimited)
	maxWaiters  int           // per-key wait-queue bound (0 = unlimited)
	duration    time.Duration
	keys        []string
}

// keyChecker is the cluster-wide exclusion and fencing oracle for one
// key: at most one session may hold the key at a time, and fencing
// tokens must be strictly increasing across grants — regardless of which
// node's server granted them.
type keyChecker struct {
	mu         sync.Mutex
	held       bool
	lastFence  uint64
	exclusionV int
	fenceV     int
}

func (k *keyChecker) acquire(fence uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.held {
		k.exclusionV++
	}
	if fence <= k.lastFence {
		k.fenceV++
	}
	k.lastFence = fence
	k.held = true
}

func (k *keyChecker) release() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.held = false
}

// sessionTally aggregates the driver-side observations.
type sessionTally struct {
	opened      atomic.Int64
	openRejects atomic.Int64
	unopened    atomic.Int64
	attempts    atomic.Int64
	grants      atomic.Int64
	overloads   atomic.Int64
	timeouts    atomic.Int64
	connLost    atomic.Int64
	errs        atomic.Int64
}

// runSessionLoad fronts the built cluster with session servers and
// drives cfg.sessions concurrent leased sessions against them for the
// measurement duration.
func runSessionLoad(cluster []*live.Manager, cfg sessionLoadConfig) error {
	nodes := len(cluster)
	servers := make([]*session.Server, nodes)
	listeners := make([]net.Listener, nodes)
	clients := make([][]*session.Client, nodes)
	defer func() {
		for _, cs := range clients {
			for _, c := range cs {
				if c != nil {
					_ = c.Close()
				}
			}
		}
		for _, s := range servers {
			if s != nil {
				_ = s.Close()
			}
		}
	}()
	// Size the per-connection write queue to this driver's fan-in: with
	// hundreds of sessions multiplexed per connection, a grant/timeout
	// burst can put one response per session in flight at once, and the
	// default queue would evict the connection as a slow consumer — a
	// self-inflicted wound, not backpressure against a genuinely slow
	// client.
	perConn := (cfg.sessions + nodes*cfg.conns - 1) / (nodes * cfg.conns)
	writeQueue := 2*perConn + session.DefaultWriteQueue
	for i, m := range cluster {
		srv, err := session.NewServer(session.Config{
			Backend:          m,
			MaxSessions:      cfg.maxSessions,
			MaxWaitersPerKey: cfg.maxWaiters,
			DefaultTTL:       cfg.ttl,
			WriteQueue:       writeQueue,
		})
		if err != nil {
			return err
		}
		servers[i] = srv
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = ln
		go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
		clients[i] = make([]*session.Client, cfg.conns)
		for c := 0; c < cfg.conns; c++ {
			cl, err := session.Dial(ln.Addr().String(), session.Options{})
			if err != nil {
				return fmt.Errorf("node %d conn %d: %w", i, c, err)
			}
			clients[i][c] = cl
		}
	}

	checkers := make(map[string]*keyChecker, len(cfg.keys))
	for _, k := range cfg.keys {
		checkers[k] = &keyChecker{}
	}

	var (
		tally     sessionTally
		latMu     sync.Mutex
		latencies []float64
		welford   stats.Welford
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	// The outer context outlives the stop signal so in-flight acquires
	// complete (grant or server-side bound) instead of abandoning queue
	// entries on shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration+cfg.wait+30*time.Second)
	defer cancel()

	for j := 0; j < cfg.sessions; j++ {
		node := j % nodes
		cl := clients[node][(j/nodes)%cfg.conns]
		key := cfg.keys[j%len(cfg.keys)]
		wg.Add(1)
		go func(j int, cl *session.Client, key string) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(j+1), uint64(j)^0x10adbee5))
			sess := openWithBackoff(ctx, cl, cfg.ttl, rng, stop, &tally)
			if sess == nil {
				tally.unopened.Add(1)
				return
			}
			defer sess.End(context.Background()) //nolint:errcheck // shutdown path
			backoff := time.Millisecond
			for {
				select {
				case <-stop:
					return
				case <-sess.Done():
					return
				case <-time.After(jittered(cfg.think, rng)):
				}
				tally.attempts.Add(1)
				start := time.Now()
				fence, err := sess.AcquireWait(ctx, key, cfg.wait)
				switch {
				case err == nil:
					l := time.Since(start).Seconds()
					latMu.Lock()
					latencies = append(latencies, l)
					welford.Add(l)
					latMu.Unlock()
					tally.grants.Add(1)
					ck := checkers[key]
					ck.acquire(fence)
					time.Sleep(cfg.hold)
					ck.release()
					_ = sess.Release(key)
					backoff = time.Millisecond
				case sessionCode(err) == session.CodeOverloaded:
					// Admission control: the key's wait queue is full.
					// Back off exponentially so the retry storm decays
					// instead of hammering the refusal path.
					tally.overloads.Add(1)
					select {
					case <-time.After(jittered(backoff, rng)):
					case <-stop:
						return
					}
					if backoff < 64*time.Millisecond {
						backoff *= 2
					}
				case sessionCode(err) == session.CodeTimeout:
					tally.timeouts.Add(1)
				case errors.Is(err, session.ErrSessionDead), errors.Is(err, session.ErrClientClosed):
					return
				case cl.Err() != nil:
					// The shared connection died (server eviction or wire
					// failure), taking every session on it along — connection
					// loss, not a per-operation protocol error.
					tally.connLost.Add(1)
					return
				default:
					tally.errs.Add(1)
					return
				}
			}
		}(j, cl, key)
	}

	// Sample concurrency while the workload runs: the leases are what
	// "concurrent sessions" means, and the servers' gauges count them.
	time.Sleep(cfg.duration)
	var concurrent, rejects int64
	for _, s := range servers {
		snap := s.Metrics().Snapshot()
		concurrent += int64(snap.Gauges["sessions_active"])
		rejects += int64(snap.Counters["session_rejects_total"])
	}
	close(stop)
	wg.Wait()

	latMu.Lock()
	defer latMu.Unlock()
	fmt.Printf("session load: opened=%d concurrent=%d open-rejects=%d unopened=%d\n",
		tally.opened.Load(), concurrent, tally.openRejects.Load(), tally.unopened.Load())
	fmt.Printf("session ops:  attempts=%d grants=%d (%.0f/sec) overloaded=%d timeouts=%d conn-lost=%d errors=%d server-rejects=%d\n",
		tally.attempts.Load(), tally.grants.Load(),
		float64(tally.grants.Load())/cfg.duration.Seconds(),
		tally.overloads.Load(), tally.timeouts.Load(), tally.connLost.Load(),
		tally.errs.Load(), rejects)
	if n := len(latencies); n > 0 {
		sort.Float64s(latencies)
		pct := func(p float64) float64 { return latencies[int(p*float64(n-1))] * 1000 }
		fmt.Printf("grant latency ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f mean=%.2f\n",
			pct(0.50), pct(0.90), pct(0.99), latencies[n-1]*1000, welford.Mean()*1000)
	}
	printSessionServers(servers)

	var exclusionV, fenceV int
	for _, k := range cfg.keys {
		exclusionV += checkers[k].exclusionV
		fenceV += checkers[k].fenceV
	}
	if exclusionV > 0 || fenceV > 0 {
		return fmt.Errorf("correctness violated: %d mutual-exclusion, %d fence-monotonicity", exclusionV, fenceV)
	}
	fmt.Printf("checker: 0 violations (mutual exclusion and fence monotonicity held over %d grants)\n",
		tally.grants.Load())
	if tally.errs.Load() > 0 {
		return fmt.Errorf("%d sessions died on unexpected errors", tally.errs.Load())
	}
	return nil
}

// openWithBackoff opens one session, retrying CodeOverloaded refusals
// with exponential backoff until stop. Any other failure gives up.
func openWithBackoff(ctx context.Context, cl *session.Client, ttl time.Duration, rng *rand.Rand, stop <-chan struct{}, tally *sessionTally) *session.Session {
	backoff := time.Millisecond
	for {
		sess, err := cl.Open(ctx, ttl)
		if err == nil {
			tally.opened.Add(1)
			return sess
		}
		if sessionCode(err) != session.CodeOverloaded {
			return nil
		}
		tally.openRejects.Add(1)
		select {
		case <-time.After(jittered(backoff, rng)):
		case <-stop:
			return nil
		}
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// printSessionServers is the per-node session summary: the server-side
// view of the same run, from each server's own registry.
func printSessionServers(servers []*session.Server) {
	fmt.Println("per-node sessions:")
	fmt.Printf("  %-4s %9s %8s %8s %8s %9s %9s %9s %9s\n",
		"node", "opens", "active", "rejects", "grants", "timeouts", "expiries", "watchev", "invalid")
	for i, s := range servers {
		snap := s.Metrics().Snapshot()
		c := snap.Counters
		fmt.Printf("  %-4d %9d %8d %8d %8d %9d %9d %9d %9d\n",
			i, c["session_opens_total"], snap.Gauges["sessions_active"],
			c["session_rejects_total"], c["session_grants_total"],
			c["session_wait_timeouts_total"], c["session_expiries_total"],
			c["session_watch_events_total"], c["session_expiry_invalidations_total"])
	}
}

// jittered spreads d over [d/2, 3d/2) so cohorts of sessions don't move
// in lockstep.
func jittered(d time.Duration, rng *rand.Rand) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rng.Int64N(int64(d)))
}

// sessionCode extracts the protocol response code from an error, or
// CodeOK when it isn't a code error.
func sessionCode(err error) session.Code {
	var ce *session.CodeError
	if errors.As(err, &ce) {
		return ce.Code
	}
	return session.CodeOK
}
