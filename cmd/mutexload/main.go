// Command mutexload drives a live distributed-mutex cluster under load
// and reports acquisition-latency percentiles, throughput and messages
// per critical section — the operational counterpart of the simulation
// experiments, measured on the real runtime (goroutines + timers) over
// an in-memory or loopback-TCP transport.
//
// -algo selects any algorithm in internal/registry, so the same harness
// compares the paper's arbiter protocol against the nine baselines on
// identical workloads:
//
//	mutexload -nodes 5 -duration 5s -rate 200
//	mutexload -transport tcp -nodes 3 -duration 3s -hold 2ms
//	mutexload -algo raymond -nodes 5 -duration 5s -rate 200
//	mutexload -algo ricartagrawala -transport tcp -nodes 3 -duration 3s
//	mutexload -nodes 5 -duration 10s -chaos drop=0.05,dup=0.02,corrupt=0.01,seed=7
//
// -keys M load-tests the sharded multi-key lock service: every node runs
// a live.Manager serving M named lock keys over its single endpoint, and
// the worker pool is spread across the keys (worker g drives key g mod
// M), so the report shows how aggregate throughput scales with key count
// at a fixed worker count:
//
//	mutexload -nodes 3 -keys 1 -workers 8 -rate 0 -duration 5s
//	mutexload -nodes 3 -keys 8 -workers 8 -rate 0 -duration 5s
//
// -workers sets the worker goroutines per node (default 1, the classic
// single-mutex workload), and -rate 0 runs them closed-loop — the
// configuration that exposes the single-key serialization ceiling
// (aggregate cs/sec ≈ 1/hold) that multi-key sharding lifts. The end of
// the run prints aggregate plus per-key throughput and messages/CS.
//
// -chaos threads every node's outbound traffic through a shared, seeded
// fault injector (internal/faultnet) and reports the injected-fault
// tallies at the end — measuring how the core protocol's recovery holds
// latency under a reproducible fault mix.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/faultnet"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/reqtrace"
	"tokenarbiter/internal/stats"
	"tokenarbiter/internal/telemetry"
	"tokenarbiter/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mutexload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mutexload", flag.ContinueOnError)
	var (
		nodes     = fs.Int("nodes", 5, "cluster size")
		trans     = fs.String("transport", "mem", "transport: mem or tcp")
		codec     = fs.String("codec", "auto", "tcp only: wire codec to offer in connection handshakes (auto, binary, or gob)")
		algoFlag  = fs.String("algo", "core", "algorithm to load-test (any registry name; see mutexnode -algo list)")
		keys      = fs.Int("keys", 1, "named lock keys served per node (1: classic single mutex; >1: the sharded multi-key service)")
		workers   = fs.Int("workers", 1, "worker goroutines per node, spread round-robin across the keys")
		duration  = fs.Duration("duration", 5*time.Second, "measurement duration")
		rate      = fs.Float64("rate", 200, "aggregate lock attempts per second (0 = closed loop)")
		hold      = fs.Duration("hold", time.Millisecond, "critical-section hold time")
		treq      = fs.Float64("treq", 0.002, "core: request collection phase (seconds)")
		tfwd      = fs.Float64("tfwd", 0.002, "core: request forwarding phase (seconds)")
		monitor   = fs.Bool("monitor", false, "core: enable the §4.1 starvation-free variant")
		recover   = fs.Bool("recovery", true, "core: enable the §6 recovery protocol")
		netDelay  = fs.Duration("netdelay", 200*time.Microsecond, "in-memory network one-way delay")
		loss      = fs.Float64("loss", 0, "in-memory network loss rate (requires -recovery, core only)")
		chaosStr  = fs.String("chaos", "", "fault-injection spec applied to every node's outbound traffic, e.g. drop=0.05,dup=0.02,corrupt=0.01,delay=1ms,seed=7 (requires -recovery, core only)")
		perNodeS  = fs.Bool("pernode", true, "print a per-node metrics summary at the end of the run")
		flightrec = fs.String("flightrec", "", "write one flight-recorder capture (JSONL) of the whole cluster's traffic and lock lifecycle to this file; re-execute it with `mutexsim replay`")
		slowN     = fs.Int("slowest", 3, "end-of-run: print the per-phase breakdown of this many slowest traced acquisitions (0 disables)")

		sessionsN   = fs.Int("sessions", 0, "session mode: sustain this many concurrent TTL-leased sessions against per-node session servers instead of driving the lock API directly (0 = classic worker mode)")
		connsN      = fs.Int("conns", 8, "session mode: shared client connections per node; sessions are spread round-robin across them")
		ttl         = fs.Duration("ttl", 10*time.Second, "session mode: lease TTL (auto-keepalive renews)")
		wait        = fs.Duration("wait", 2*time.Second, "session mode: server-side acquire wait bound (past it the server answers timeout)")
		think       = fs.Duration("think", 50*time.Millisecond, "session mode: per-session pause between operations (jittered)")
		maxSessions = fs.Int("maxsessions", 0, "session mode: per-node admission bound on concurrent sessions (0 = unlimited)")
		maxWaiters  = fs.Int("maxwaiters", 256, "session mode: per-key wait-queue bound; acquires beyond it are refused with overloaded (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 1 {
		return fmt.Errorf("need at least one node")
	}
	if *keys < 1 {
		return fmt.Errorf("-keys %d: need at least one lock key", *keys)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers %d: need at least one worker per node", *workers)
	}
	if *sessionsN < 0 {
		return fmt.Errorf("-sessions %d: cannot be negative", *sessionsN)
	}
	if *sessionsN > 0 && *connsN < 1 {
		return fmt.Errorf("-conns %d: need at least one connection per node", *connsN)
	}
	entry, ok := registry.Lookup(*algoFlag)
	if !ok {
		return fmt.Errorf("unknown algorithm %q (have %s)",
			*algoFlag, strings.Join(registry.Names(), ", "))
	}
	algo := entry.Name
	if algo != registry.Core && *loss > 0 {
		return fmt.Errorf("-loss requires the core algorithm's recovery protocol; %s has none", algo)
	}
	if algo != registry.Core && *chaosStr != "" {
		return fmt.Errorf("-chaos requires the core algorithm's recovery protocol; %s has none", algo)
	}

	var factory live.Factory
	if algo == registry.Core {
		opts := core.Options{
			Treq:              *treq,
			Tfwd:              *tfwd,
			Monitor:           *monitor,
			RetransmitTimeout: 1,
		}
		if *monitor {
			opts.MonitorFlushTimeout = 2
		}
		if *recover {
			opts.Recovery = core.RecoveryOptions{
				Enabled:        true,
				TokenTimeout:   1,
				RoundTimeout:   0.25,
				ArbiterTimeout: 3,
				ProbeTimeout:   0.25,
			}
		}
		factory = registry.CoreLiveFactory(opts)
	} else {
		var err error
		factory, err = registry.NewLiveFactory(algo, nil)
		if err != nil {
			return err
		}
	}

	// One shared injector covers every node's outbound link, so a single
	// seed reproduces the whole cluster's fault schedule.
	var inj *faultnet.Injector
	if *chaosStr != "" {
		spec, err := faultnet.ParseSpec(*chaosStr)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		inj = faultnet.New(faultnet.Options{Seed: spec.Seed, Faults: spec.Faults, Algo: algo})
	}

	// One shared collector and (optionally) one shared flight recorder
	// serve every node: spans from all the nodes a request crossed land in
	// one place, and a single capture file holds the whole cluster's
	// timeline — exactly what `mutexsim replay` needs.
	tracer := reqtrace.NewCollector(reqtrace.DefaultDepth)
	var frec *reqtrace.Recorder
	if *flightrec != "" {
		// The recorder seals every captured message itself, so the wire
		// types must be registered even over the mem transport (which
		// ships message values and never serializes).
		if _, err := registry.RegisterWire(algo); err != nil {
			return err
		}
		var err error
		frec, err = reqtrace.CreateRecorder(*flightrec, algo, *nodes)
		if err != nil {
			return err
		}
		defer frec.Close() //nolint:errcheck // shutdown path
	}

	cluster, counters, cleanup, err := buildCluster(*trans, *nodes, algo, *codec, factory, *netDelay, *loss, inj, tracer, frec)
	if err != nil {
		return err
	}
	defer cleanup()

	keyNames := make([]string, *keys)
	for k := range keyNames {
		keyNames[k] = fmt.Sprintf("lock-%d", k)
	}
	totalWorkers := *nodes * *workers

	if *sessionsN > 0 {
		fmt.Printf("cluster: %d nodes over %s, algorithm=%s, keys=%d, sessions=%d, conns=%d/node, ttl=%v, wait=%v, think=%v, hold=%v, duration=%v, maxsessions=%d maxwaiters=%d\n",
			*nodes, *trans, algo, *keys, *sessionsN, *connsN, *ttl, *wait, *think, *hold, *duration, *maxSessions, *maxWaiters)
		err := runSessionLoad(cluster, sessionLoadConfig{
			sessions:    *sessionsN,
			conns:       *connsN,
			ttl:         *ttl,
			wait:        *wait,
			think:       *think,
			hold:        *hold,
			maxSessions: *maxSessions,
			maxWaiters:  *maxWaiters,
			duration:    *duration,
			keys:        keyNames,
		})
		if *perNodeS {
			printPerNode(algo, cluster, counters)
		}
		if frec != nil {
			records, dropped := frec.Totals()
			fmt.Printf("flight recorder: %d records (%d dropped) -> %s\n", records, dropped, *flightrec)
		}
		if inj != nil {
			c := inj.Counters()
			fmt.Printf("chaos: dropped=%d duplicated=%d corrupted=%d delayed=%d reordered=%d\n",
				c.Drops, c.Dups, c.Corruptions, c.Delayed, c.Reordered)
		}
		return err
	}

	fmt.Printf("cluster: %d nodes over %s, algorithm=%s, keys=%d, workers=%d/node, rate=%.0f/s, hold=%v, duration=%v, monitor=%v recovery=%v loss=%.2f%%\n",
		*nodes, *trans, algo, *keys, *workers, *rate, *hold, *duration, *monitor, *recover, 100**loss)

	ctx, cancel := context.WithTimeout(context.Background(), *duration+30*time.Second)
	defer cancel()

	var (
		mu        sync.Mutex
		latencies []float64
		perKey    = make(map[string]int)
		lat       stats.Welford
		attempts  atomic.Int64
		errs      atomic.Int64
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	perWorker := *rate / float64(totalWorkers)
	for i := range cluster {
		for w := 0; w < *workers; w++ {
			g := i**workers + w // global worker index
			key := keyNames[g%*keys]
			wg.Add(1)
			go func(m *live.Manager, key string, seed uint64) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(seed, seed^0x42))
				acquired := 0
				defer func() {
					mu.Lock()
					perKey[key] += acquired
					mu.Unlock()
				}()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if perWorker > 0 {
						gap := time.Duration(rng.ExpFloat64() / perWorker * float64(time.Second))
						select {
						case <-time.After(gap):
						case <-stop:
							return
						}
					}
					attempts.Add(1)
					start := time.Now()
					if err := m.Lock(ctx, key); err != nil {
						errs.Add(1)
						return
					}
					l := time.Since(start).Seconds()
					mu.Lock()
					latencies = append(latencies, l)
					lat.Add(l) // Welford state is not thread-safe; share mu with latencies
					mu.Unlock()
					acquired++
					time.Sleep(*hold)
					m.Unlock(key)
				}
			}(cluster[i], key, uint64(g+1))
		}
	}

	time.Sleep(*duration)
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(latencies) == 0 {
		return fmt.Errorf("no acquisitions completed (errors: %d)", errs.Load())
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		i := int(p * float64(len(latencies)-1))
		return latencies[i] * 1000
	}
	var sent uint64
	for _, c := range counters {
		s, _ := c.Totals()
		sent += s
	}
	n := len(latencies)
	fmt.Printf("acquisitions: %d (%.0f/sec aggregate over %d keys), errors: %d\n",
		n, float64(n)/duration.Seconds(), *keys, errs.Load())
	fmt.Printf("latency ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f mean=%.2f\n",
		pct(0.50), pct(0.90), pct(0.99), latencies[n-1]*1000, lat.Mean()*1000)
	if *keys > 1 {
		printPerKey(cluster, keyNames, perKey, duration.Seconds())
	}
	if *perNodeS {
		printPerNode(algo, cluster, counters)
	}
	if *slowN > 0 {
		printSlowest(tracer, *slowN)
	}
	// The comparison footer: this is the live counterpart of the paper's
	// Figure 6 message-complexity comparison. Run once per -algo on the
	// same workload and compare the line directly.
	fmt.Printf("algorithm=%s keys=%d: %.2f messages per CS (%d messages, %d critical sections, %d nodes)\n",
		algo, *keys, float64(sent)/float64(n), sent, n, *nodes)
	if frec != nil {
		records, dropped := frec.Totals()
		fmt.Printf("flight recorder: %d records (%d dropped) -> %s\n", records, dropped, *flightrec)
	}
	if inj != nil {
		c := inj.Counters()
		fmt.Printf("chaos: dropped=%d duplicated=%d corrupted=%d delayed=%d reordered=%d\n",
			c.Drops, c.Dups, c.Corruptions, c.Delayed, c.Reordered)
	}
	return nil
}

// printPerKey reports each key's slice of the aggregate: acquisitions
// and throughput from the workers' own tallies, messages per CS from the
// key's registries summed across every node's manager (each key is an
// independent DME group, so its message complexity stands alone).
func printPerKey(cluster []*live.Manager, keyNames []string, perKey map[string]int, seconds float64) {
	fmt.Println("per-key:")
	fmt.Printf("  %-10s %12s %10s %12s\n", "key", "acquired", "cs/sec", "msgs/CS")
	for _, key := range keyNames {
		var sent, granted uint64
		for _, m := range cluster {
			reg := m.Registry(key)
			if reg == nil {
				continue
			}
			snap := reg.Snapshot()
			granted += snap.Counters["cs_granted_total"]
			for _, v := range snap.Kinds["transport_sent_total"] {
				sent += v
			}
		}
		msgsPerCS := 0.0
		if granted > 0 {
			msgsPerCS = float64(sent) / float64(granted)
		}
		fmt.Printf("  %-10s %12d %10.0f %12.2f\n",
			key, perKey[key], float64(perKey[key])/seconds, msgsPerCS)
	}
}

// printSlowest reports the slowest completed acquisitions by lock-wait
// time with their end-to-end trace IDs and per-phase breakdown — which
// node asked, when the batch accepted it, every token hop, the grant
// fence — so a P99 outlier in the latency line above can be explained
// request by request.
func printSlowest(c *reqtrace.Collector, n int) {
	slow := c.Slowest(n)
	if len(slow) == 0 {
		return
	}
	fmt.Printf("slowest acquisitions (of %d traced):\n", len(c.Completed()))
	for _, t := range slow {
		s := t.Summarize()
		key := s.Key
		if key == "" {
			key = "-"
		}
		fmt.Printf("  trace %-12s key=%-10s wait=%8.2fms hold=%6.2fms hops=%d fence=%d\n",
			s.ID, key, s.Wait*1000, s.Hold*1000, s.Hops, s.Fence)
		for _, st := range s.Steps {
			peer := ""
			if st.Peer >= 0 {
				peer = fmt.Sprintf(" -> node %d", st.Peer)
			}
			fmt.Printf("    +%9.2fms  %-10s node %d%s (Δ%.2fms)\n",
				(st.At-s.Start)*1000, st.Phase, st.Node, peer, st.Delta*1000)
		}
	}
}

// printPerNode scrapes each node's per-key telemetry registries and
// prints the live counterparts of the simulation observables summed over
// the node's keys: grants, token passes, dispatches, lock-wait
// percentiles (merged across keys) and the node's message traffic. The
// token/dispatch/retransmit columns are core-protocol observables and
// read zero under baseline algorithms; grants, waits and traffic are
// algorithm-agnostic.
func printPerNode(algo string, cluster []*live.Manager, counters []*transport.Counting) {
	fmt.Println("per-node metrics:")
	fmt.Printf("  %-4s %-14s %8s %8s %8s %8s %12s %12s %10s %10s\n",
		"node", "algorithm", "grants", "tokpass", "dispatch", "retx", "wait-p50-ms", "wait-p99-ms", "sent", "recv")
	for i, m := range cluster {
		wait := m.MergedHistogram("lock_wait_seconds")
		sent, recv := counters[i].Totals()
		fmt.Printf("  %-4d %-14s %8d %8d %8d %8d %12.2f %12.2f %10d %10d\n",
			i, algo,
			m.SumCounter("cs_granted_total"),
			m.SumCounter("token_passes_total"),
			m.SumCounter("dispatches_total"),
			m.SumCounter("requests_retransmitted_total"),
			wait.P50*1000, wait.P99*1000,
			sent, recv)
	}
}

// buildCluster assembles one live.Manager per node over the chosen
// transport, each endpoint wrapped in a counting layer (the same wiring
// cmd/mutexnode uses), so the end-of-run summary can scrape protocol and
// transport metrics together. With -keys 1 the Manager serves a single
// key — same protocol, one DME group — keeping the comparison between
// key counts an apples-to-apples change of sharding only. Baseline
// algorithms get FIFO in-memory channels (Lamport requires them; TCP is
// FIFO by nature).
func buildCluster(kind string, n int, algo, codec string, factory live.Factory, delay time.Duration, loss float64, inj *faultnet.Injector, tracer *reqtrace.Collector, frec *reqtrace.Recorder) ([]*live.Manager, []*transport.Counting, func(), error) {
	counters := make([]*transport.Counting, n)
	trans := make([]transport.Transport, n)
	regs := make([]*telemetry.Registry, n)
	mgrs := make([]*live.Manager, n)
	var closers []func()
	for i := 0; i < n; i++ {
		regs[i] = telemetry.NewRegistry()
	}
	// Flight recorder outermost (the capture shows what the protocol
	// attempted), counting next, the optional fault injector innermost,
	// directly over the wire; the Manager's key demux sits above the
	// whole chain. frec.Middleware() is nil — and skipped — when flight
	// recording is off.
	chain := func(i int, base transport.Transport) {
		var faultMW transport.Middleware
		if inj != nil {
			faultMW = inj.Middleware()
			inj.RegisterMetrics(regs[i])
		}
		trans[i] = transport.Chain(base, frec.Middleware(), transport.CountingMW(regs[i]), faultMW)
		counters[i], _ = transport.Find[*transport.Counting](trans[i])
	}

	switch kind {
	case "mem":
		net := transport.NewMemNetwork(n, transport.MemOptions{
			Delay: delay, LossRate: loss, Seed: 1,
			FIFO: algo != registry.Core,
		})
		closers = append(closers, net.Close)
		for i := 0; i < n; i++ {
			chain(i, net.Endpoint(i))
		}
	case "tcp":
		trs := make([]*transport.TCPTransport, n)
		addrs := make(map[dme.NodeID]string, n)
		for i := 0; i < n; i++ {
			tr, err := transport.NewTCPOpt(i, map[dme.NodeID]string{i: "127.0.0.1:0"},
				transport.TCPOptions{Algo: algo, Codec: codec})
			if err != nil {
				return nil, nil, func() {}, err
			}
			trs[i] = tr
			addrs[i] = tr.Addr().String()
		}
		for i := 0; i < n; i++ {
			trs[i].SetPeers(addrs)
			chain(i, trs[i])
		}
	default:
		return nil, nil, func() {}, fmt.Errorf("unknown transport %q (mem or tcp)", kind)
	}

	for i := 0; i < n; i++ {
		m, err := live.NewManager(live.ManagerConfig{
			ID: i, N: n, Transport: trans[i], Factory: factory, Algo: algo,
			Seed: uint64(i + 1), Metrics: regs[i],
			Tracer: tracer, FlightRec: frec,
		})
		if err != nil {
			return nil, nil, func() {}, err
		}
		mgrs[i] = m
	}
	cleanup := func() {
		for _, m := range mgrs {
			if m != nil {
				_ = m.Close()
			}
		}
		for _, c := range closers {
			c()
		}
	}
	return mgrs, counters, cleanup, nil
}
