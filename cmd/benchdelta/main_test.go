package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineDoc = `{
  "date": "2026-08-01",
  "benchmarks": [
    {"name": "SimulatorThroughput", "metrics": {"cs/sec": 100000, "ns/op": 210000}},
    {"name": "SimulatorThroughput", "metrics": {"cs/sec": 104000, "ns/op": 205000}}
  ]
}`

func runDelta(t *testing.T, baseline string, current string, extra ...string) (string, error) {
	t.Helper()
	args := append([]string{
		"-baseline", baseline,
		"-bench", "SimulatorThroughput",
		"-metric", "cs/sec",
		"-max-regress", "0.05",
	}, extra...)
	var out strings.Builder
	err := run(args, strings.NewReader(current), &out)
	return out.String(), err
}

func TestWithinTolerancePasses(t *testing.T) {
	base := writeDoc(t, t.TempDir(), "base.json", baselineDoc)
	// 2% below the best baseline run: inside the 5% budget.
	out, err := runDelta(t, base, `{"benchmarks":[{"name":"SimulatorThroughput","metrics":{"cs/sec":101900}}]}`)
	if err != nil {
		t.Fatalf("within-tolerance run failed: %v", err)
	}
	if !strings.Contains(out, "SimulatorThroughput") {
		t.Errorf("comparison line missing from output: %q", out)
	}
}

func TestRegressionFails(t *testing.T) {
	base := writeDoc(t, t.TempDir(), "base.json", baselineDoc)
	// 10% below the best baseline run of 104000.
	_, err := runDelta(t, base, `{"benchmarks":[{"name":"SimulatorThroughput","metrics":{"cs/sec":93600}}]}`)
	if err == nil {
		t.Fatal("10% regression passed a 5% gate")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error does not name the regression: %v", err)
	}
}

func TestBestOfCountIsUsed(t *testing.T) {
	base := writeDoc(t, t.TempDir(), "base.json", baselineDoc)
	// One noisy bad run next to a good one: the good one carries the gate.
	current := `{"benchmarks":[
	  {"name":"SimulatorThroughput","metrics":{"cs/sec":80000}},
	  {"name":"SimulatorThroughput","metrics":{"cs/sec":103000}}
	]}`
	if _, err := runDelta(t, base, current); err != nil {
		t.Fatalf("best-of-count run failed: %v", err)
	}
}

func TestLowerBetterOrientation(t *testing.T) {
	base := writeDoc(t, t.TempDir(), "base.json", baselineDoc)
	// ns/op rising 10% above the best (lowest) baseline must fail.
	_, err := runDelta(t, base,
		`{"benchmarks":[{"name":"SimulatorThroughput","metrics":{"ns/op":225500}}]}`,
		"-metric", "ns/op", "-lower-better")
	if err == nil {
		t.Fatal("10% ns/op regression passed a 5% gate")
	}
	// And improving (dropping) must pass.
	if _, err := runDelta(t, base,
		`{"benchmarks":[{"name":"SimulatorThroughput","metrics":{"ns/op":190000}}]}`,
		"-metric", "ns/op", "-lower-better"); err != nil {
		t.Fatalf("ns/op improvement failed the gate: %v", err)
	}
}

func TestMissingBenchmarkErrors(t *testing.T) {
	base := writeDoc(t, t.TempDir(), "base.json", baselineDoc)
	_, err := runDelta(t, base, `{"benchmarks":[{"name":"SomethingElse","metrics":{"cs/sec":1}}]}`)
	if err == nil {
		t.Fatal("missing benchmark in the current run passed")
	}
}
