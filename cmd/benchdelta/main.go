// Command benchdelta compares one benchmark metric from a fresh
// benchjson document against a committed BENCH_<date>.json baseline and
// exits non-zero when the metric regressed beyond a tolerance. It is the
// CI tripwire behind the inline-executor work: the live-path speedups
// must not tax the simulator (`BenchmarkSimulatorThroughput` is the
// guarded metric there), and any future PR that does gets a red check
// instead of a silently bent trajectory.
//
//	go test -run '^$' -bench 'SimulatorThroughput$' -count 3 . \
//	  | go run ./cmd/benchjson \
//	  | go run ./cmd/benchdelta -baseline BENCH_2026-08-07.json \
//	      -bench SimulatorThroughput -metric cs/sec -max-regress 0.05
//
// With -count > 1 (recommended: benchmark noise is real) the BEST run on
// each side is compared — max for higher-is-better metrics like cs/sec,
// min when -lower-better is set for ns/op-style metrics — so a single
// noisy iteration can neither fail nor pass the gate on its own.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
)

// benchFile mirrors the fields of cmd/benchjson's document that the
// comparison needs; unknown fields are ignored.
type benchFile struct {
	Date       string      `json:"date"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdelta", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "", "committed BENCH_<date>.json to compare against (required)")
		currentPath  = fs.String("current", "", "benchjson document for the fresh run (default stdin)")
		bench        = fs.String("bench", "", "benchmark name, as written by benchjson (no Benchmark prefix; required)")
		metric       = fs.String("metric", "cs/sec", "metric unit to compare")
		maxRegress   = fs.Float64("max-regress", 0.05, "largest tolerated fractional regression (0.05 = 5%)")
		lowerBetter  = fs.Bool("lower-better", false, "metric improves downward (ns/op, B/op)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" || *bench == "" {
		return fmt.Errorf("-baseline and -bench are required")
	}

	baseline, err := loadFile(*baselinePath)
	if err != nil {
		return err
	}
	var current *benchFile
	if *currentPath != "" {
		current, err = loadFile(*currentPath)
	} else {
		current, err = decode(stdin, "stdin")
	}
	if err != nil {
		return err
	}

	base, err := best(baseline, *bench, *metric, *lowerBetter)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", *baselinePath, err)
	}
	cur, err := best(current, *bench, *metric, *lowerBetter)
	if err != nil {
		return fmt.Errorf("current run: %w", err)
	}

	// regress is the fraction lost relative to the baseline, oriented so
	// positive always means worse.
	regress := (base - cur) / base
	if *lowerBetter {
		regress = (cur - base) / base
	}
	fmt.Fprintf(stdout, "%s %s: baseline %.6g (from %s), current %.6g, delta %+.2f%%\n",
		*bench, *metric, base, baseline.Date, cur, -regress*100)
	if regress > *maxRegress {
		return fmt.Errorf("%s %s regressed %.2f%% (baseline %.6g → %.6g), tolerance %.2f%%",
			*bench, *metric, regress*100, base, cur, *maxRegress*100)
	}
	return nil
}

func loadFile(path string) (*benchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decode(f, path)
}

func decode(r io.Reader, src string) (*benchFile, error) {
	var doc benchFile
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", src, err)
	}
	return &doc, nil
}

// best returns the strongest value of the metric across every entry with
// the given name — repeated entries come from -count > 1 runs.
func best(doc *benchFile, name, metric string, lowerBetter bool) (float64, error) {
	found := false
	v := math.Inf(1)
	if !lowerBetter {
		v = math.Inf(-1)
	}
	for _, b := range doc.Benchmarks {
		if b.Name != name {
			continue
		}
		m, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		found = true
		if lowerBetter {
			v = math.Min(v, m)
		} else {
			v = math.Max(v, m)
		}
	}
	if !found {
		return 0, fmt.Errorf("no %q entry with metric %q", name, metric)
	}
	return v, nil
}
