// Quickstart: a five-node in-process cluster of the arbiter token-passing
// mutex. Each node acquires the distributed critical section three times
// and prints what it did. Node 0 starts as the arbiter holding the token,
// exactly as in the paper's initialization.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/transport"
)

func main() {
	const n = 5
	net := transport.NewMemNetwork(n, transport.MemOptions{
		Delay: time.Millisecond, // simulated one-way network latency
	})
	defer net.Close()

	// The factory picks the protocol each node runs; swap it for
	// registry.NewLiveFactory("raymond", nil) (or any registry name) to
	// run a baseline on the same harness.
	factory := registry.CoreLiveFactory(core.Options{
		Treq: 0.01, // 10 ms request-collection phase
		Tfwd: 0.01, // 10 ms request-forwarding phase
	})
	nodes := make([]*live.Node, n)
	for i := 0; i < n; i++ {
		node, err := live.NewNode(live.Config{
			ID:        i,
			N:         n,
			Transport: net.Endpoint(i),
			Factory:   factory,
		})
		if err != nil {
			log.Fatalf("starting node %d: %v", i, err)
		}
		nodes[i] = node
		defer node.Close() //nolint:errcheck // demo shutdown
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *live.Node) {
			defer wg.Done()
			for round := 1; round <= 3; round++ {
				if err := node.Lock(ctx); err != nil {
					log.Printf("node %d: lock failed: %v", i, err)
					return
				}
				fmt.Printf("node %d entered the critical section (round %d)\n", i, round)
				time.Sleep(2 * time.Millisecond) // the protected work
				node.Unlock()
			}
		}(i, node)
	}
	wg.Wait()

	for i, node := range nodes {
		granted, released := node.Stats()
		fmt.Printf("node %d: %d granted / %d released\n", i, granted, released)
	}
}
