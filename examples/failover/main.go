// Failover: a live demonstration of the paper's §6 failure recovery. A
// four-node cluster runs under load while the example (1) drops a
// PRIVILEGE message on the wire — losing the token in flight — and then
// (2) hard-kills the node currently holding the mutex. Both times the
// two-phase token invalidation protocol (WARNING → ENQUIRY →
// INVALIDATE + regeneration) restores progress, visible as the token
// epoch incrementing.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/transport"
)

func main() {
	const n = 4

	var dropArmed atomic.Bool
	var droppedAt atomic.Int64
	net := transport.NewMemNetwork(n, transport.MemOptions{
		Delay: time.Millisecond,
		Interceptor: func(from, to dme.NodeID, msg dme.Message) transport.MemAction {
			if dropArmed.CompareAndSwap(true, false) && msg.Kind() == core.KindPrivilege {
				droppedAt.Store(time.Now().UnixNano())
				fmt.Printf(">>> dropping PRIVILEGE %d→%d: the token is now lost in flight\n", from, to)
				return transport.MemDrop
			}
			return transport.MemDeliver
		},
	})
	defer net.Close()

	opts := core.Options{
		Treq:              0.005,
		Tfwd:              0.005,
		RetransmitTimeout: 0.5,
		Recovery: core.RecoveryOptions{
			Enabled:        true,
			TokenTimeout:   0.3, // detect a missing token within 300 ms
			RoundTimeout:   0.1,
			ArbiterTimeout: 1.0,
			ProbeTimeout:   0.1,
		},
	}
	factory := registry.CoreLiveFactory(opts)
	nodes := make([]*live.Node, n)
	for i := 0; i < n; i++ {
		node, err := live.NewNode(live.Config{
			ID: i, N: n, Transport: net.Endpoint(i), Factory: factory,
		})
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
		defer node.Close() //nolint:errcheck // demo shutdown
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Background load from every node.
	var acquisitions atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, node := range nodes[1:] { // node 0 is our failure victim later
		wg.Add(1)
		go func(node *live.Node) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := node.Lock(ctx); err != nil {
					return
				}
				acquisitions.Add(1)
				time.Sleep(2 * time.Millisecond)
				node.Unlock()
				time.Sleep(3 * time.Millisecond)
			}
		}(node)
	}

	epoch := func() uint64 {
		var max uint64
		for _, node := range nodes[1:] {
			if ins, err := node.Inspect(ctx); err == nil && ins.Epoch > max {
				max = ins.Epoch
			}
		}
		return max
	}

	time.Sleep(200 * time.Millisecond)
	fmt.Printf("cluster warm: %d acquisitions, token epoch %d\n", acquisitions.Load(), epoch())

	// --- Failure 1: lose the token on the wire -------------------------
	fmt.Println("\n=== failure 1: dropping the next PRIVILEGE message ===")
	before := acquisitions.Load()
	dropArmed.Store(true)
	time.Sleep(1500 * time.Millisecond)
	fmt.Printf("recovered: epoch now %d, %d acquisitions since the drop\n",
		epoch(), acquisitions.Load()-before)

	// --- Failure 2: crash the node holding the mutex --------------------
	fmt.Println("\n=== failure 2: killing node 0 while it holds the mutex ===")
	if err := nodes[0].Lock(ctx); err != nil {
		log.Fatalf("victim lock: %v", err)
	}
	fmt.Println("node 0 acquired the mutex ... and dies")
	net.Disconnect(0)
	_ = nodes[0].Close()

	before = acquisitions.Load()
	time.Sleep(1500 * time.Millisecond)
	fmt.Printf("survivors recovered: epoch now %d, %d acquisitions since the crash\n",
		epoch(), acquisitions.Load()-before)

	close(stop)
	cancel()
	wg.Wait()

	if acquisitions.Load() == before {
		log.Fatal("no progress after the crash: recovery failed")
	}
	fmt.Printf("\ntotal acquisitions across both failures: %d\n", acquisitions.Load())
}
