// Failover: a live demonstration of the paper's §6 failure recovery. A
// four-node cluster runs under load while the example (1) drops the next
// PRIVILEGE message on the wire via the faultnet injector — losing the
// token in flight — and then (2) hard-kills the node currently holding
// the mutex. Both times the two-phase token invalidation protocol
// (WARNING → ENQUIRY → INVALIDATE + regeneration) restores progress,
// visible as the token epoch incrementing.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/faultnet"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/transport"
)

func main() {
	const n = 4

	net := transport.NewMemNetwork(n, transport.MemOptions{
		Delay: time.Millisecond,
	})
	defer net.Close()

	// The injector sits between every node and the wire as a transport
	// middleware; DropNextKind below arms the targeted token loss.
	inj := faultnet.New(faultnet.Options{Seed: 1})

	opts := core.Options{
		Treq:              0.005,
		Tfwd:              0.005,
		RetransmitTimeout: 0.5,
		Recovery: core.RecoveryOptions{
			Enabled:        true,
			TokenTimeout:   0.3, // detect a missing token within 300 ms
			RoundTimeout:   0.1,
			ArbiterTimeout: 1.0,
			ProbeTimeout:   0.1,
		},
	}
	factory := registry.CoreLiveFactory(opts)
	nodes := make([]*live.Node, n)
	for i := 0; i < n; i++ {
		node, err := live.NewNode(live.Config{
			ID: i, N: n,
			Transport: transport.Chain(net.Endpoint(i), inj.Middleware()),
			Factory:   factory,
		})
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
		defer node.Close() //nolint:errcheck // demo shutdown
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Background load from every node.
	var acquisitions atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, node := range nodes[1:] { // node 0 is our failure victim later
		wg.Add(1)
		go func(node *live.Node) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := node.Lock(ctx); err != nil {
					return
				}
				acquisitions.Add(1)
				time.Sleep(2 * time.Millisecond)
				node.Unlock()
				time.Sleep(3 * time.Millisecond)
			}
		}(node)
	}

	epoch := func() uint64 {
		var max uint64
		for _, node := range nodes[1:] {
			if ins, err := node.Inspect(ctx); err == nil && ins.Epoch > max {
				max = ins.Epoch
			}
		}
		return max
	}

	time.Sleep(200 * time.Millisecond)
	fmt.Printf("cluster warm: %d acquisitions, token epoch %d\n", acquisitions.Load(), epoch())

	// --- Failure 1: lose the token on the wire -------------------------
	fmt.Println("\n=== failure 1: dropping the next PRIVILEGE message ===")
	before := acquisitions.Load()
	inj.DropNextKind(core.KindPrivilege, 1)
	time.Sleep(1500 * time.Millisecond)
	fmt.Printf("recovered: epoch now %d, %d acquisitions since the drop (injector: %d dropped)\n",
		epoch(), acquisitions.Load()-before, inj.Counters().Drops)

	// --- Failure 2: crash the node holding the mutex --------------------
	fmt.Println("\n=== failure 2: killing node 0 while it holds the mutex ===")
	victimCtx, victimCancel := context.WithTimeout(ctx, 5*time.Second)
	defer victimCancel()
	if ok, err := nodes[0].TryLockContext(victimCtx); err != nil || !ok {
		log.Fatalf("victim lock: ok=%v err=%v", ok, err)
	}
	fmt.Println("node 0 acquired the mutex ... and dies")
	net.Disconnect(0)
	_ = nodes[0].Close()

	before = acquisitions.Load()
	time.Sleep(1500 * time.Millisecond)
	fmt.Printf("survivors recovered: epoch now %d, %d acquisitions since the crash\n",
		epoch(), acquisitions.Load()-before)

	close(stop)
	cancel()
	wg.Wait()

	if acquisitions.Load() == before {
		log.Fatal("no progress after the crash: recovery failed")
	}
	fmt.Printf("\ntotal acquisitions across both failures: %d\n", acquisitions.Load())
}
