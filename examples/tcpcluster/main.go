// TCP cluster: three live arbiter-mutex nodes talking gob-over-TCP on
// loopback, all hosted by this process so the example is self-contained —
// the wire path is identical to a real multi-process deployment (see
// cmd/mutexnode for the one-process-per-node version). The nodes contend
// for the mutex and the example prints the resulting serialized schedule.
//
// Run with:
//
//	go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/transport"
)

func main() {
	const n = 3

	// Bind each node on an OS-assigned port, then exchange addresses —
	// the same dance a deployment tool would do with a config file.
	transports := make([]*transport.TCPTransport, n)
	addrs := make(map[dme.NodeID]string, n)
	for i := 0; i < n; i++ {
		tr, err := transport.NewTCP(i, map[dme.NodeID]string{i: "127.0.0.1:0"})
		if err != nil {
			log.Fatalf("listen %d: %v", i, err)
		}
		transports[i] = tr
		addrs[i] = tr.Addr().String()
	}
	for i := 0; i < n; i++ {
		transports[i].SetPeers(addrs)
	}
	fmt.Println("cluster addresses:")
	for i := 0; i < n; i++ {
		fmt.Printf("  node %d: %s\n", i, addrs[i])
	}

	factory := registry.CoreLiveFactory(core.Options{
		Treq:              0.01,
		Tfwd:              0.01,
		RetransmitTimeout: 1,
		Recovery: core.RecoveryOptions{
			Enabled:      true,
			TokenTimeout: 2,
			RoundTimeout: 0.5,
		},
	})
	nodes := make([]*live.Node, n)
	for i := 0; i < n; i++ {
		node, err := live.NewNode(live.Config{
			ID:        i,
			N:         n,
			Transport: transports[i],
			Factory:   factory,
		})
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
		defer node.Close() //nolint:errcheck // demo shutdown
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var (
		mu       sync.Mutex
		schedule []int
		wg       sync.WaitGroup
	)
	for i := range nodes {
		wg.Add(1)
		go func(node *live.Node) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				if err := node.Lock(ctx); err != nil {
					log.Printf("node %d: %v", node.ID(), err)
					return
				}
				mu.Lock()
				schedule = append(schedule, node.ID())
				mu.Unlock()
				fmt.Printf("node %d holds the mutex (round %d)\n", node.ID(), r+1)
				time.Sleep(5 * time.Millisecond)
				node.Unlock()
			}
		}(nodes[i])
	}
	wg.Wait()

	fmt.Printf("serialized schedule over TCP: %v\n", schedule)
	fmt.Printf("total acquisitions: %d (want %d)\n", len(schedule), n*5)
}
