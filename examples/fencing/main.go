// Fencing: why a distributed lock alone is not enough, and how fencing
// tokens fix it. A client can acquire the mutex, stall (GC pause, VM
// migration, network partition), get declared dead by the §6 recovery
// protocol, and then wake up and write to the shared resource while a
// new holder is active. The cure — returned by live.Node.LockFence — is
// a counter that increases with every grant across the cluster,
// including across token regenerations: the resource remembers the
// highest fence it has accepted and rejects anything older.
//
// This example stages exactly that incident: node 1 acquires the mutex
// with fence F, "stalls" while disconnected, the cluster recovers and
// node 2 proceeds with a higher fence, and node 1's late write bounces
// off the fence check.
//
// Run with:
//
//	go run ./examples/fencing
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/transport"
)

// register is the protected resource: a last-writer-wins cell that
// enforces fencing.
type register struct {
	mu       sync.Mutex
	value    string
	maxFence uint64
	rejected int
}

// write applies the value iff the fence is not stale.
func (r *register) write(fence uint64, value string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fence <= r.maxFence {
		r.rejected++
		return false
	}
	r.maxFence = fence
	r.value = value
	return true
}

func main() {
	const n = 3
	net := transport.NewMemNetwork(n, transport.MemOptions{Delay: time.Millisecond})
	defer net.Close()

	opts := core.Options{
		Treq:              0.005,
		Tfwd:              0.005,
		RetransmitTimeout: 0.5,
		Recovery: core.RecoveryOptions{
			Enabled:        true,
			TokenTimeout:   0.25, // declare the token lost after 250 ms
			RoundTimeout:   0.1,
			ArbiterTimeout: 1,
			ProbeTimeout:   0.1,
		},
	}
	factory := registry.CoreLiveFactory(opts)
	nodes := make([]*live.Node, n)
	for i := 0; i < n; i++ {
		node, err := live.NewNode(live.Config{ID: i, N: n, Transport: net.Endpoint(i), Factory: factory})
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
		defer node.Close() //nolint:errcheck // demo shutdown
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reg := &register{}

	// Warm up so the token circulates.
	for _, nd := range nodes {
		if err := nd.Lock(ctx); err != nil {
			log.Fatal(err)
		}
		nd.Unlock()
	}

	// Node 1 acquires the lock and stalls while holding it.
	staleFence, err := nodes[1].LockFence(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 1 acquired the mutex with fence %d ... and stalls (partitioned)\n", staleFence)
	net.Disconnect(1) // the stall: node 1 can't be reached, token dies with it

	// Node 2 wants the lock; the §6 recovery declares the token lost,
	// regenerates it with a fence jump, and grants node 2.
	freshFence, err := nodes[2].LockFence(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster recovered: node 2 holds the mutex with fence %d (> %d)\n", freshFence, staleFence)
	if !reg.write(freshFence, "written by node 2") {
		log.Fatal("fresh write rejected!?")
	}
	nodes[2].Unlock()

	// Node 1 wakes up, still believing it holds the lock, and writes.
	net.Reconnect(1)
	fmt.Println("node 1 wakes up and issues its late write...")
	if reg.write(staleFence, "GARBAGE from the stale holder") {
		log.Fatal("STALE WRITE ACCEPTED — fencing failed")
	}
	fmt.Printf("register rejected the stale write (fence %d ≤ %d)\n", staleFence, reg.maxFence)
	fmt.Printf("final value: %q, rejected writes: %d\n", reg.value, reg.rejected)
	nodes[1].Unlock() // node 1 cleans up its local state
}
