// Priority: the prioritized-access variant of §5.2, demonstrated through
// the simulation harness. Ten nodes contend with identical Poisson load;
// nodes carry static priorities 0..9 (higher value = served earlier
// within each collected batch). The example shows the resulting
// waiting-time gradient — and, per the paper's own caveat, that the
// priority system is *incremental*: ordering applies within an arbiter's
// batch, so low-priority nodes are delayed but never starved.
//
// Run with:
//
//	go run ./examples/priority
package main

import (
	"fmt"
	"log"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/sim"
	"tokenarbiter/internal/workload"
)

func main() {
	const (
		n      = 10
		lambda = 0.4 // near saturation, so batches are long enough to reorder
		seed   = 42
	)

	priorities := make([]int, n)
	for i := range priorities {
		priorities[i] = i // node 9 is the most important
	}

	run := func(prio []int) *dme.Metrics {
		algo := core.New(core.Options{
			Treq:              0.1,
			Tfwd:              0.1,
			Priorities:        prio,
			RetransmitTimeout: 25,
		})
		m, err := dme.Run(algo, dme.Config{
			N:              n,
			Seed:           seed,
			Delay:          sim.ConstantDelay{D: 0.1},
			Texec:          0.1,
			TotalRequests:  60_000,
			WarmupRequests: 6_000,
			MaxVirtualTime: 1e9,
			Gen: func(node int) dme.GeneratorFunc {
				return workload.Stream(workload.Poisson{Lambda: lambda}, seed, node)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	fmt.Println("FCFS (no priorities):")
	base := run(nil)
	fmt.Printf("  overall wait %.3f ± %.3f, Jain fairness %.4f\n",
		base.Waiting.Mean(), base.Waiting.CI95(), base.JainFairness())

	fmt.Println("\nstatic priorities 0..9 (node 9 highest):")
	prio := run(priorities)
	fmt.Printf("  overall wait %.3f ± %.3f, Jain fairness %.4f\n",
		prio.Waiting.Mean(), prio.Waiting.CI95(), prio.JainFairness())

	fmt.Println("\nper-node mean waiting time (time units):")
	fmt.Printf("  %-6s %12s %14s %8s\n", "node", "FCFS", "prioritized", "CS done")
	for i := 0; i < n; i++ {
		fmt.Printf("  %-6d %12.3f %14.3f %8d\n",
			i, base.PerNodeWait[i].Mean(), prio.PerNodeWait[i].Mean(), prio.PerNodeCS[i])
	}
	fmt.Println("\nNote: every node completes all of its requests in both runs —")
	fmt.Println("prioritization reorders batches but cannot starve (§5.2).")
}
