// Counter: the classic motivating workload for mutual exclusion — many
// workers spread over cluster nodes increment a shared, unsynchronized
// counter. The distributed mutex is the only thing standing between the
// counter and lost updates; the example verifies the final value and
// reports throughput and fairness per node.
//
// Run with:
//
//	go run ./examples/counter
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"tokenarbiter/internal/core"
	"tokenarbiter/internal/live"
	"tokenarbiter/internal/registry"
	"tokenarbiter/internal/transport"
)

const (
	nodesN    = 4
	workersN  = 4  // workers per node
	rounds    = 25 // increments per worker
	wantTotal = nodesN * workersN * rounds
)

func main() {
	net := transport.NewMemNetwork(nodesN, transport.MemOptions{
		Delay:  500 * time.Microsecond,
		Jitter: 250 * time.Microsecond,
	})
	defer net.Close()

	factory := registry.CoreLiveFactory(core.Options{
		Treq:              0.002,
		Tfwd:              0.002,
		RetransmitTimeout: 0.5,
	})
	counters := make([]*transport.Counting, nodesN)
	nodes := make([]*live.Node, nodesN)
	for i := range nodes {
		counters[i] = transport.NewCounting(net.Endpoint(i))
		node, err := live.NewNode(live.Config{
			ID:        i,
			N:         nodesN,
			Transport: counters[i],
			Factory:   factory,
		})
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
		defer node.Close() //nolint:errcheck // demo shutdown
	}

	var counter int // deliberately unsynchronized — the mutex protects it

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for i := range nodes {
		for w := 0; w < workersN; w++ {
			wg.Add(1)
			go func(node *live.Node) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					// TryLockContext bounds each acquisition by the run's
					// deadline: (false, nil) means the context expired while
					// waiting, anything else is a real failure.
					ok, err := node.TryLockContext(ctx)
					if err != nil {
						log.Printf("node %d: %v", node.ID(), err)
						return
					}
					if !ok {
						log.Printf("node %d: deadline expired waiting for the mutex", node.ID())
						return
					}
					counter++ // safe: we hold the distributed mutex
					node.Unlock()
				}
			}(nodes[i])
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("counter = %d (want %d) in %v — %.0f critical sections/sec\n",
		counter, wantTotal, elapsed.Round(time.Millisecond),
		float64(wantTotal)/elapsed.Seconds())
	if counter != wantTotal {
		log.Fatalf("LOST UPDATES: mutual exclusion failed")
	}
	var totalMsgs uint64
	for i, node := range nodes {
		granted, _ := node.Stats()
		sent, _ := counters[i].Totals()
		totalMsgs += sent
		fmt.Printf("node %d served %d acquisitions (%d messages sent)\n", node.ID(), granted, sent)
	}
	fmt.Printf("live messages per critical section: %.2f (paper: ≈3 at high load, N=%d gives 3−2/N = %.2f)\n",
		float64(totalMsgs)/float64(wantTotal), nodesN, 3-2/float64(nodesN))
}
