# Developer entry points. The repo is plain `go build ./...`-able; the
# targets below just package the common invocations.

GO    ?= go
DATE  ?= $(shell date +%F)
# The benchmark-trajectory set: the end-to-end simulator throughput
# benchmark, the event-kernel micro-benchmarks, the multi-key lock
# service's aggregate-throughput-vs-keys points (in-memory and over
# loopback TCP), the wire codec encode+decode micro-benchmarks, the
# inline-executor lock-machinery micro-benchmarks (message-driven handoff
# and the uncontended Lock/Unlock fast path), and the session-protocol
# round trip (Acquire+Release over loopback TCP against an instant
# backend).
# Override BENCH to run more (e.g. `make bench BENCH=.` for every
# experiment benchmark).
BENCH ?= SimulatorThroughput|ScheduleStep|PostStep|CancelHeavy|ManagerMultiKey|ManagerTCPMultiKey|SealOpen|NodeHandoffLatency|LockUnlockUncontended|SessionAcquireRelease

.PHONY: build test race bench bench-full fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -skip 'TestChaosSoak|TestManagerChaosSoakMultiKey|TestSessionChaosSoak|TestRunTenThousandSessions' ./...

# bench runs the trajectory benchmarks and records the point as
# BENCH_$(DATE).json. Commit the file when the numbers move: the dated
# series is the performance history of the simulation engine.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem . ./internal/sim ./internal/live ./internal/wire ./internal/session | tee bench_raw.txt
	$(GO) run ./cmd/benchjson -date $(DATE) -o BENCH_$(DATE).json < bench_raw.txt
	@rm -f bench_raw.txt
	@echo wrote BENCH_$(DATE).json

# bench-full additionally sweeps every experiment benchmark (E1–E15
# wrappers in bench_test.go); expect several minutes.
bench-full:
	$(MAKE) bench BENCH=.

# fuzz runs the codec differential fuzzer longer than CI's 30-second
# smoke; override FUZZTIME for a real soak.
FUZZTIME ?= 2m
fuzz:
	$(GO) test -run '^$$' -fuzz=FuzzCodecEquivalence -fuzztime=$(FUZZTIME) ./internal/wire
