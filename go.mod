module tokenarbiter

go 1.22
