// Package tokenarbiter's root benchmarks regenerate every table and
// figure of the paper's evaluation, one bench per experiment of the
// DESIGN.md index (E1–E10). Each benchmark runs the corresponding
// experiment at a bench-sized scale and reports the headline quantity as
// a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation; cmd/mutexsim runs the same experiments
// at full scale with CIs.
package tokenarbiter_test

import (
	"testing"

	"tokenarbiter/internal/baseline/ricartagrawala"
	"tokenarbiter/internal/core"
	"tokenarbiter/internal/dme"
	"tokenarbiter/internal/experiments"
	"tokenarbiter/internal/reqtrace"
	"tokenarbiter/internal/sim"
	"tokenarbiter/internal/workload"
)

// benchSetup is the scaled-down experiment configuration used by the
// benchmarks: one replication per point, 20k requests.
func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.Requests = 20_000
	s.Reps = 1
	return s
}

var benchLambdas = []float64{0.02, 0.2, 0.45}

// BenchmarkFig3MessagesVsLoad is experiment E1 (paper Figure 3).
func BenchmarkFig3MessagesVsLoad(b *testing.B) {
	var last *experiments.Fig345Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig345(benchSetup(), benchLambdas)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	pts := last.Messages.Series[0].Points
	b.ReportMetric(pts[0].Y, "msgs/cs@light")
	b.ReportMetric(pts[len(pts)-1].Y, "msgs/cs@heavy")
}

// BenchmarkFig4DelayVsLoad is experiment E2 (paper Figure 4).
func BenchmarkFig4DelayVsLoad(b *testing.B) {
	var last *experiments.Fig345Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig345(benchSetup(), benchLambdas)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	pts := last.Delay.Series[0].Points
	b.ReportMetric(pts[0].Y, "delay@light")
	b.ReportMetric(pts[len(pts)-1].Y, "delay@heavy")
}

// BenchmarkFig5ForwardedFraction is experiment E3 (paper Figure 5).
func BenchmarkFig5ForwardedFraction(b *testing.B) {
	var last *experiments.Fig345Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig345(benchSetup(), benchLambdas)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	pts := last.Forwarded.Series[0].Points
	b.ReportMetric(100*pts[len(pts)-1].Y, "fwd%@heavy")
}

// BenchmarkFig6Comparison is experiment E4 (paper Figure 6).
func BenchmarkFig6Comparison(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFig6(benchSetup(), benchLambdas, false)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	for _, s := range last.Series {
		b.ReportMetric(s.Points[len(s.Points)-1].Y, "msgs/cs@heavy:"+s.Name)
	}
}

// BenchmarkE5LightLoadBound and BenchmarkE6HeavyLoadBound validate the
// closed forms of §3 (equations 1–6).
func BenchmarkE5LightLoadBound(b *testing.B) {
	benchAnalysisRow(b, 0, 1)
}

// BenchmarkE6HeavyLoadBound validates Eq. (4)/(6).
func BenchmarkE6HeavyLoadBound(b *testing.B) {
	benchAnalysisRow(b, 2, 3)
}

func benchAnalysisRow(b *testing.B, rows ...int) {
	b.Helper()
	var last *experiments.AnalysisResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAnalysis(benchSetup(), 0.1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, idx := range rows {
		row := last.Rows[idx]
		b.ReportMetric(row.Measured, "measured")
		b.ReportMetric(100*row.RelErr, "relerr%")
	}
}

// BenchmarkE7MonitorOverhead is the §4.1 starvation-free variant cost.
func BenchmarkE7MonitorOverhead(b *testing.B) {
	s := benchSetup()
	s.Requests = 10_000
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunMonitorOverhead(s, []float64{0.02, 0.45})
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	m := map[string][]experiments.Point{}
	for _, sr := range last.Series {
		m[sr.Name] = sr.Points
	}
	b.ReportMetric(m["monitor"][0].Y-m["basic"][0].Y, "overhead@light")
	b.ReportMetric(m["monitor"][1].Y-m["basic"][1].Y, "overhead@heavy")
}

// BenchmarkE8TokenRecovery is the §6 failure-injection experiment.
func BenchmarkE8TokenRecovery(b *testing.B) {
	var last *experiments.RecoveryResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRecovery(benchSetup(), []uint64{1})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.MaxService, "maxSvc:"+string(row.Scenario))
	}
}

// BenchmarkE9Scaling is the N ≫ 1 limit check of §3.
func BenchmarkE9Scaling(b *testing.B) {
	s := benchSetup()
	s.Requests = 6_000
	var last *experiments.ScalingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScaling(s, []int{5, 10, 20, 50})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	final := last.Rows[len(last.Rows)-1]
	b.ReportMetric(final.HeavySim, "msgs/cs@heavy:N=50")
	b.ReportMetric(final.LightSim, "msgs/cs@light:N=50")
}

// BenchmarkE10PhaseAblation is the tunable-parameter sweep of §2.1/§7.
func BenchmarkE10PhaseAblation(b *testing.B) {
	s := benchSetup()
	s.Requests = 6_000
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPhaseAblation(s, 0.2, []float64{0.05, 0.2, 0.8}, []float64{0.1})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Cells[0].MsgsPerCS, "msgs/cs@treq=0.05")
	b.ReportMetric(last.Cells[len(last.Cells)-1].MsgsPerCS, "msgs/cs@treq=0.8")
}

// BenchmarkE11DelayAblation re-runs the load sweep under stochastic delay
// models (robustness extension).
func BenchmarkE11DelayAblation(b *testing.B) {
	s := benchSetup()
	s.Requests = 8_000
	var msgs *experiments.Figure
	for i := 0; i < b.N; i++ {
		m, _, err := experiments.RunDelayAblation(s, []float64{0.05, 0.3})
		if err != nil {
			b.Fatal(err)
		}
		msgs = m
	}
	for _, sr := range msgs.Series {
		b.ReportMetric(sr.Points[len(sr.Points)-1].Y, "msgs/cs:"+sr.Name)
	}
}

// BenchmarkE12MessageVolume measures payload units per CS across
// algorithms (volume extension).
func BenchmarkE12MessageVolume(b *testing.B) {
	s := benchSetup()
	s.Requests = 8_000
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunVolumeComparison(s, []float64{0.3})
		if err != nil {
			b.Fatal(err)
		}
		fig = f
	}
	for _, sr := range fig.Series {
		b.ReportMetric(sr.Points[0].Y, "units/cs:"+sr.Name)
	}
}

// BenchmarkE15RecoveryTuning measures the recovery-timeout sweet spot
// under sustained loss.
func BenchmarkE15RecoveryTuning(b *testing.B) {
	s := benchSetup()
	s.Requests = 6_000
	var res *experiments.TuningResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunRecoveryTuning(s, 0.005, []float64{3})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Rows[0].Throughput, "cs/unit@tt=3")
}

// --- micro-benchmarks of the underlying machinery ----------------------

// BenchmarkSimulatorThroughput measures raw event-loop throughput: how
// many simulated CS invocations per second the kernel sustains.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := dme.Config{
		N:              10,
		Seed:           7,
		Delay:          sim.ConstantDelay{D: 0.1},
		Texec:          0.1,
		TotalRequests:  uint64(b.N)*100 + 1000,
		MaxVirtualTime: 1e12,
		Gen: func(node int) dme.GeneratorFunc {
			return workload.Stream(workload.Poisson{Lambda: 0.3}, 7, node)
		},
	}
	b.ResetTimer()
	m, err := dme.Run(core.New(core.Options{RetransmitTimeout: 25}), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.CSCompleted)/b.Elapsed().Seconds(), "cs/sec")
}

// BenchmarkSimulatorThroughputTraced is the tracing-enabled counterpart
// of BenchmarkSimulatorThroughput: same kernel, same workload, with the
// full request-tracing pipeline attached — a SimTracer on the
// simulation's trace hook minting IDs and recording runtime spans, and
// a CoreObserver on the protocol's observer hook recording batch and
// token-hop spans into the same collector. The pair is the bench guard
// for the tracing tax: the untraced number is the committed trajectory
// point, this one bounds the fully-traced cost.
func BenchmarkSimulatorThroughputTraced(b *testing.B) {
	collector := reqtrace.NewCollector(reqtrace.DefaultDepth)
	tracer := reqtrace.NewSimTracer(collector, "", 10)
	// The simulation is single-goroutine, so the last trace-event time
	// doubles as the observer's clock without touching the kernel.
	var now float64
	obs := reqtrace.CoreObserver(collector, "", func() float64 { return now })
	cfg := dme.Config{
		N:              10,
		Seed:           7,
		Delay:          sim.ConstantDelay{D: 0.1},
		Texec:          0.1,
		TotalRequests:  uint64(b.N)*100 + 1000,
		MaxVirtualTime: 1e12,
		Gen: func(node int) dme.GeneratorFunc {
			return workload.Stream(workload.Poisson{Lambda: 0.3}, 7, node)
		},
		Trace: func(ev dme.TraceEvent) {
			now = ev.Time
			tracer.Trace(ev)
		},
	}
	b.ResetTimer()
	m, err := dme.Run(core.New(core.Options{RetransmitTimeout: 25, Observer: obs}), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if completed, _, _ := collector.Totals(); completed == 0 {
		b.Fatal("tracing pipeline recorded no completed traces")
	}
	b.ReportMetric(float64(m.CSCompleted)/b.Elapsed().Seconds(), "cs/sec")
}

// BenchmarkBaselineRicartAgrawala gives a baseline-cost reference point.
func BenchmarkBaselineRicartAgrawala(b *testing.B) {
	cfg := dme.Config{
		N:              10,
		Seed:           7,
		Delay:          sim.ConstantDelay{D: 0.1},
		Texec:          0.1,
		TotalRequests:  uint64(b.N)*100 + 1000,
		MaxVirtualTime: 1e12,
		Gen: func(node int) dme.GeneratorFunc {
			return workload.Stream(workload.Poisson{Lambda: 0.3}, 7, node)
		},
	}
	b.ResetTimer()
	m, err := dme.Run(&ricartagrawala.Algorithm{}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(m.MessagesPerCS(), "msgs/cs")
}
