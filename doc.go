// Package tokenarbiter is a Go implementation and full experimental
// reproduction of Banerjee & Chrysanthis, "A New Token Passing
// Distributed Mutual Exclusion Algorithm" (ICDCS 1996).
//
// The module is organized as internal packages (see README.md for the
// map); this root package only anchors the module documentation and the
// paper-reproduction benchmarks in bench_test.go — one testing.B
// benchmark per table/figure of the paper's evaluation:
//
//	go test -bench=. -benchmem
//
// Deployable API: internal/live (Lock/Unlock over a transport).
// Simulation & experiments: internal/dme, internal/experiments,
// cmd/mutexsim.
package tokenarbiter
